//! A minimal hand-rolled JSON writer **and reader** for stable report
//! output, fabric spec documents and service request bodies.
//!
//! The build environment has no registry access, so there is no serde;
//! reports instead implement [`ToJson`] on top of the tiny
//! [`JsonObject`]/[`JsonArray`] builders below. The output contract is
//! deliberately strict so downstream tooling can pin it:
//!
//! * object keys appear in the order the builder emitted them;
//! * strings are escaped per RFC 8259 (quotes, backslashes, control
//!   characters as `\u00XX`);
//! * integers are written verbatim; floats with **two decimal places**
//!   (non-finite floats become `null`);
//! * no whitespace is emitted anywhere.
//!
//! The read side ([`JsonValue::parse`]) is the mirror image: a strict
//! recursive-descent RFC 8259 parser used by the `qspr serve` HTTP
//! endpoints to decode request bodies and by `qspr-fabric` to load
//! declarative fabric spec files. It preserves object key order,
//! rejects trailing garbage and duplicate keys, and bounds nesting
//! depth so untrusted bodies cannot blow the stack.
//!
//! This crate sits below every other QSPR crate (it has no
//! dependencies); `qspr::json` re-exports it unchanged.
//!
//! # Examples
//!
//! ```
//! use qspr_json::JsonObject;
//!
//! let json = JsonObject::new()
//!     .string("circuit", "[[5,1,3]]")
//!     .number("latency_us", 634)
//!     .float("improvement_pct", 23.798)
//!     .boolean("mvfb_wins", true)
//!     .build();
//! assert_eq!(
//!     json,
//!     r#"{"circuit":"[[5,1,3]]","latency_us":634,"improvement_pct":23.80,"mvfb_wins":true}"#
//! );
//! ```

use std::fmt::Write as _;

/// Types that serialize themselves to a stable JSON string.
pub trait ToJson {
    /// Renders `self` as one JSON value with the stability guarantees
    /// documented at the [crate level](crate).
    fn to_json(&self) -> String;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object, emitting keys in call order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn number(mut self, key: &str, value: u64) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field, formatted with two decimal places
    /// (`null` when not finite).
    pub fn float(mut self, key: &str, value: f64) -> JsonObject {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.2}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn boolean(mut self, key: &str, value: bool) -> JsonObject {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Builder for one JSON array of pre-rendered values.
#[derive(Debug, Clone, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> JsonArray {
        JsonArray { buf: String::new() }
    }

    /// Appends a pre-rendered JSON value.
    pub fn push_raw(&mut self, value: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(value);
    }

    /// Collects the JSON renderings of `items` into one array.
    pub fn of<T: ToJson>(items: impl IntoIterator<Item = T>) -> String {
        let mut arr = JsonArray::new();
        for item in items {
            arr.push_raw(&item.to_json());
        }
        arr.build()
    }

    /// Finishes the array.
    pub fn build(self) -> String {
        format!("[{}]", self.buf)
    }
}

/// A parsed JSON value.
///
/// Objects keep their fields **in source order** (mirroring the writer,
/// which emits keys in call order), so a parse/serialize round trip is
/// order-preserving.
///
/// # Examples
///
/// ```
/// use qspr_json::JsonValue;
///
/// let v = JsonValue::parse(r#"{"program":"H a\n","m":25,"trace":true}"#).unwrap();
/// assert_eq!(v.get("program").and_then(JsonValue::as_str), Some("H a\n"));
/// assert_eq!(v.get("m").and_then(JsonValue::as_u64), Some(25));
/// assert_eq!(v.get("trace").and_then(JsonValue::as_bool), Some(true));
/// assert!(v.get("router").is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; see [`JsonValue::as_u64`]).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object: `(key, value)` pairs in source order, keys unique.
    Object(Vec<(String, JsonValue)>),
}

/// A JSON parse failure: what went wrong and the byte offset at which
/// the parser gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input at which the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum nesting depth accepted by [`JsonValue::parse`]; deeper
/// inputs are rejected rather than recursed into (service bodies are
/// untrusted).
const MAX_DEPTH: usize = 64;

impl JsonValue {
    /// Parses `text` as exactly one JSON value (trailing garbage is an
    /// error).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] describing the first syntax
    /// violation: malformed literals, unterminated strings, invalid
    /// escapes, duplicate object keys, nesting deeper than 64 levels,
    /// or bytes left over after the value.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` for absent keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when this is a number with
    /// no fractional part that fits `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(n) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Recursive-descent parser over raw bytes (ASCII structure; string
/// contents are validated as UTF-8 by construction since the input is
/// `&str`).
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(
        &mut self,
        literal: &str,
        value: JsonValue,
    ) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.at..].starts_with(literal.as_bytes()) {
            self.at += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal (expected {literal:?})")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 64 levels"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", JsonValue::Null),
            Some(b't') => self.expect_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.expect_literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.at += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(JsonValue::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.error("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.at += 1; // consume '{'
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.error("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(JsonValue::Object(fields));
            }
            if !self.eat(b',') {
                return Err(self.error("expected ',' or '}' in object"));
            }
        }
    }

    /// RFC 8259 `number`: `-? int frac? exp?` with `int` either `0` or
    /// a non-zero-leading digit run. The grammar is validated here —
    /// `f64::from_str` alone would admit `"01"`, `"1."` and `".5"`.
    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.at;
        let fail = |at: usize, bytes: &[u8]| JsonParseError {
            message: format!(
                "invalid number {:?}",
                String::from_utf8_lossy(&bytes[start..at.min(bytes.len())])
            ),
            offset: start,
        };
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        // int: "0" | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.at += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.at += 1;
                }
            }
            _ => return Err(fail(self.at + 1, self.bytes)),
        }
        // frac: "." [0-9]+
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(fail(self.at, self.bytes));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        // exp: [eE] [+-]? [0-9]+
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(fail(self.at, self.bytes));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII slice");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => Err(fail(self.at, self.bytes)),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.at += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired \uXXXX.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid codepoint"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("unpaired surrogate"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                c if c < 0x20 => return Err(self.error("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so resync on
                    // the char boundary and copy the whole character.
                    let rest = std::str::from_utf8(&self.bytes[self.at - 1..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.at += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.at + 4;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.at = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("µs ok"), "µs ok");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().build(), "{}");
        assert_eq!(JsonArray::new().build(), "[]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let json = JsonObject::new().float("x", f64::NAN).build();
        assert_eq!(json, r#"{"x":null}"#);
    }

    #[test]
    fn nested_raw_values() {
        let inner = JsonObject::new().number("n", 1).build();
        let mut arr = JsonArray::new();
        arr.push_raw(&inner);
        arr.push_raw("2");
        let outer = JsonObject::new().raw("items", &arr.build()).build();
        assert_eq!(outer, r#"{"items":[{"n":1},2]}"#);
    }

    #[test]
    fn parser_accepts_every_value_kind() {
        let v = JsonValue::parse(
            r#" {"s":"a\u00b5s","n":-2.5,"i":7,"b":false,"z":null,"a":[1,{"k":"v"},[]]} "#,
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("aµs"));
        assert_eq!(v.get("n"), Some(&JsonValue::Number(-2.5)));
        assert_eq!(v.get("i").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("z"), Some(&JsonValue::Null));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("k").and_then(JsonValue::as_str), Some("v"));
        // Fields stay in source order.
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["s", "n", "i", "b", "z", "a"]);
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let written = JsonObject::new()
            .string("circuit", "[[5,1,3]]\n\"quoted\"")
            .number("latency_us", 634)
            .float("improvement_pct", 23.798)
            .boolean("mvfb_wins", true)
            .build();
        let v = JsonValue::parse(&written).unwrap();
        assert_eq!(
            v.get("circuit").and_then(JsonValue::as_str),
            Some("[[5,1,3]]\n\"quoted\"")
        );
        assert_eq!(v.get("latency_us").and_then(JsonValue::as_u64), Some(634));
        assert_eq!(v.get("improvement_pct"), Some(&JsonValue::Number(23.80)));
        assert_eq!(v.get("mvfb_wins").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":1,}"#,
            r#"{"a":1 "b":2}"#,
            r#"{"a":1}x"#,
            "tru",
            "1e999",
            "\"\\q\"",
            "\"unterminated",
            "\"\u{01}\"",
            r#"{"dup":1,"dup":2}"#,
            "nan",
            "+1",
            "--1",
            // RFC 8259 number grammar: no leading zeros, no bare dot or
            // exponent, no trailing dot.
            "01",
            "-01",
            "1.",
            ".5",
            "1e",
            "1e+",
            "-",
            "1.2.3",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
        // ...while every legal shape still parses.
        for good in ["0", "-0", "10", "0.5", "1e3", "1E-2", "-1.25e+2"] {
            assert!(JsonValue::parse(good).is_ok(), "{good:?} should parse");
        }
        // The error carries a position and prints as one line.
        let err = JsonValue::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("at byte 4"));
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        let v = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(0.0).as_u64(), Some(0));
        assert_eq!(JsonValue::String("7".into()).as_u64(), None);
    }
}
