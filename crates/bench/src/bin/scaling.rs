//! Scalability experiment (beyond the paper's evaluation): mapped
//! latency, routing overhead and mapper wall-time as circuits grow, on
//! the quantum Hamming family [[2^r−1, 2^r−1−2r, 3]] and on random
//! circuits of increasing width.
//!
//! Usage: `cargo run -p qspr-bench --bin scaling --release [--quick]`

use std::time::Instant;

use qspr_bench::quick_mode;
use qspr_fabric::{Fabric, TechParams};
use qspr_qasm::{random_program, RandomProgramConfig};
use qspr_qecc::css::quantum_hamming;
use qspr_qecc::encoder::encoding_circuit;
use qspr_sched::Qidg;
use qspr_sim::{Mapper, MapperPolicy, Placement};

fn main() {
    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));

    println!("Quantum Hamming family [[2^r-1, 2^r-1-2r, 3]]:");
    println!(
        "{:<12} {:>6} {:>6} {:>9} {:>9} {:>10} {:>9}",
        "code", "qubits", "gates", "ideal µs", "QSPR µs", "overhead%", "map time"
    );
    let orders: &[u32] = if quick_mode() { &[3, 4] } else { &[3, 4, 5] };
    for &r in orders {
        let code = quantum_hamming(r);
        let program = encoding_circuit(&code).expect("family encodes");
        let ideal = Qidg::new(&program, &tech).critical_path_delay();
        let placement = Placement::center(&fabric, program.num_qubits());
        let started = Instant::now();
        let outcome = mapper.map(&program, &placement).expect("maps");
        let elapsed = started.elapsed();
        println!(
            "{:<12} {:>6} {:>6} {:>9} {:>9} {:>9.1}% {:>8.1?}",
            code.name(),
            program.num_qubits(),
            program.instructions().len(),
            ideal,
            outcome.latency(),
            100.0 * (outcome.latency() - ideal) as f64 / ideal as f64,
            elapsed,
        );
    }

    println!("\nRandom Clifford circuits (width sweep, 6 gates per qubit):");
    println!(
        "{:<12} {:>6} {:>6} {:>9} {:>9} {:>10} {:>9}",
        "circuit", "qubits", "gates", "ideal µs", "QSPR µs", "overhead%", "map time"
    );
    let widths: &[usize] = if quick_mode() {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 24, 32, 48]
    };
    for &q in widths {
        let program = random_program(&RandomProgramConfig::new(q, 6 * q), 2012);
        let ideal = Qidg::new(&program, &tech).critical_path_delay();
        let placement = Placement::center(&fabric, q);
        let started = Instant::now();
        let outcome = mapper.map(&program, &placement).expect("maps");
        let elapsed = started.elapsed();
        println!(
            "{:<12} {:>6} {:>6} {:>9} {:>9} {:>9.1}% {:>8.1?}",
            format!("rand-{q}"),
            q,
            program.instructions().len(),
            ideal,
            outcome.latency(),
            100.0 * (outcome.latency() - ideal) as f64 / ideal as f64,
            elapsed,
        );
    }
    println!("\n(overhead = routing+congestion share over the ideal critical path)");
}
