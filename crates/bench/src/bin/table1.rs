//! Regenerates the paper's Table 1: MVFB vs Monte Carlo placement at
//! equal placement-run budgets, for m = 25 and m = 100.
//!
//! Usage: `cargo run -p qspr-bench --bin table1 --release [--quick]`

use qspr::Flow;
use qspr_bench::{quick_mode, Workbench, PAPER_TABLE1};

fn main() {
    let ms: &[usize] = if quick_mode() { &[5] } else { &[25, 100] };
    let wb = Workbench::load();
    let flow = Flow::on(wb.fabric);

    for &m in ms {
        println!("Table 1 — MVFB vs Monte Carlo, m={m} (45x85 fabric)");
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9} {:>6} | paper(m={m}): MVFB/MC µs, runs",
            "circuit", "MVFB µs", "MVFB ms", "MC µs", "MC ms", "runs"
        );
        let flow = flow.clone().seeds(m);
        for (bench, paper) in wb.benchmarks.iter().zip(PAPER_TABLE1) {
            let row = flow
                .compare_placers(&bench.name, &bench.program)
                .expect("benchmarks map cleanly");
            let paper_ref = match m {
                25 => format!("{} / {} ({})", paper.1, paper.2, paper.3),
                100 => format!("{} / {} ({})", paper.4, paper.5, paper.6),
                _ => "-".to_owned(),
            };
            println!(
                "{:<12} {:>9} {:>9} {:>9} {:>9} {:>6} | {}",
                row.circuit,
                row.mvfb_latency,
                row.mvfb_cpu.as_millis(),
                row.mc_latency,
                row.mc_cpu.as_millis(),
                row.runs,
                paper_ref,
            );
            // The paper's observation (MVFB <= MC at equal placement
            // runs, Table 1) holds at its seed counts, m = 25 and
            // m = 100, and we enforce it there. At the reduced m = 5
            // of --quick the search is too shallow for the claim:
            // Monte Carlo wins [[9,1,3]] by ~1% (MVFB 790 vs MC 780),
            // so off-paper seed counts only warn.
            if row.mvfb_wins() {
                // Fine either way.
            } else if matches!(m, 25 | 100) {
                panic!(
                    "{}: MVFB ({}) must not lose to MC ({}) at equal runs",
                    row.circuit, row.mvfb_latency, row.mc_latency
                );
            } else {
                println!(
                    "  warning: {}: MVFB ({}) lost to MC ({}) at off-paper m={m}",
                    row.circuit, row.mvfb_latency, row.mc_latency
                );
            }
        }
        println!();
    }
    println!("Shape checks passed: MVFB <= MC at the paper's seed counts everywhere.");
}
