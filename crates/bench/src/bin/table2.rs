//! Regenerates the paper's Table 2: ideal baseline vs QUALE vs QSPR
//! execution latency on the six QECC encoding circuits.
//!
//! Usage: `cargo run -p qspr-bench --bin table2 --release [--m 100] [--quick]`

use qspr::Flow;
use qspr_bench::{parse_flag, quick_mode, Workbench, PAPER_TABLE2};

fn main() {
    let m = parse_flag("--m", if quick_mode() { 5 } else { 100 });
    let wb = Workbench::load();
    let flow = Flow::on(wb.fabric).seeds(m);

    println!("Table 2 — Baseline vs QUALE vs QSPR (45x85 fabric, MVFB m={m})");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8} | paper: {:>6} {:>6} {:>6} {:>7}",
        "circuit", "baseline", "QUALE", "QSPR", "impr%", "base", "QUALE", "QSPR", "impr%"
    );
    for (bench, paper) in wb.benchmarks.iter().zip(PAPER_TABLE2) {
        let row = flow
            .compare(&bench.name, &bench.program)
            .expect("benchmarks map cleanly");
        let paper_impr = 100.0 * (paper.2 as f64 - paper.3 as f64) / paper.2 as f64;
        println!(
            "{:<12} {:>9}µ {:>9}µ {:>9}µ {:>7.2}% | paper: {:>6} {:>6} {:>6} {:>6.2}%",
            row.circuit,
            row.baseline,
            row.quale,
            row.qspr,
            row.improvement_pct(),
            paper.1,
            paper.2,
            paper.3,
            paper_impr,
        );
        assert!(row.baseline <= row.qspr, "baseline is a lower bound");
        assert!(row.qspr <= row.quale, "QSPR must beat QUALE");
    }
    println!("\nShape checks passed: baseline <= QSPR <= QUALE on every circuit.");
}
