//! Fabric architecture comparison (extension): the same circuits mapped
//! onto 2D grids of different channel pitches and onto a linear
//! (junction-free) QCCD fabric.
//!
//! The paper's §II motivates 2D multiplexed fabrics; this experiment
//! quantifies that choice: the linear fabric has zero turn overhead but
//! serializes on its single channel, while denser grids trade wiring
//! area for shorter routes.
//!
//! Usage: `cargo run -p qspr-bench --bin archcompare --release [--quick]`

use qspr_bench::quick_mode;
use qspr_fabric::{Fabric, RegularFabricSpec, TechParams};
use qspr_qecc::codes::benchmark_suite;
use qspr_sim::{Mapper, MapperPolicy, Placement};

fn main() {
    let tech = TechParams::date2012();
    let fabrics: Vec<(String, Fabric)> = vec![
        ("grid-45x85-p4".to_owned(), Fabric::quale_45x85()),
        (
            "grid-31x61-p3".to_owned(),
            RegularFabricSpec::new(31, 61, 3)
                .build()
                .expect("valid spec"),
        ),
        (
            "grid-49x91-p6".to_owned(),
            RegularFabricSpec::new(49, 91, 6)
                .build()
                .expect("valid spec"),
        ),
        ("linear-24".to_owned(), Fabric::linear(24)),
    ];

    let take = if quick_mode() { 3 } else { 6 };
    let suite: Vec<_> = benchmark_suite().into_iter().take(take).collect();

    print!("{:<16} {:>7} {:>9}", "fabric", "traps", "diameter");
    for bench in &suite {
        print!(" {:>10}", bench.name);
    }
    println!();
    for (name, fabric) in &fabrics {
        let stats = fabric.stats();
        print!(
            "{:<16} {:>7} {:>9}",
            name, stats.traps, stats.junction_diameter_moves
        );
        let mapper = Mapper::new(fabric, tech, MapperPolicy::qspr(&tech));
        for bench in &suite {
            let qubits = bench.program.num_qubits();
            if stats.traps * 2 < qubits {
                print!(" {:>10}", "-");
                continue;
            }
            let placement = Placement::center(fabric, qubits);
            match mapper.map(&bench.program, &placement) {
                Ok(outcome) => print!(" {:>10}", outcome.latency()),
                Err(_) => print!(" {:>10}", "stall"),
            }
        }
        println!();
    }
    println!("\n(latencies in µs, center placement, QSPR policy; '-' = too few traps)");
    println!("Finding: at the paper's timings (T_turn = 10xT_move) and these circuit");
    println!("sizes, the junction-free linear fabric wins — turns cost more than");
    println!("single-channel serialization up to ~50 qubits. This is consistent with");
    println!("the paper's own emphasis on turn delay as the dominant overhead; 2D");
    println!("fabrics pay off at qubit counts where one channel saturates.");
}
