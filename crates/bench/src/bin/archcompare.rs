//! Fabric architecture comparison (extension): the same circuits mapped
//! onto 2D grids of different channel pitches and onto a linear
//! (junction-free) QCCD fabric.
//!
//! The paper's §II motivates 2D multiplexed fabrics; this experiment
//! quantifies that choice: the linear fabric has zero turn overhead but
//! serializes on its single channel, while denser grids trade wiring
//! area for shorter routes.
//!
//! Usage: `cargo run -p qspr-bench --bin archcompare --release
//! [--quick] [--fabrics DIR]`
//!
//! With `--fabrics DIR` the hardcoded variants are replaced by a sweep
//! over every fabric description file in `DIR` (sorted by file name):
//! each file is loaded through the spec layer's [`Fabric::parse`] —
//! JSON `FabricSpec` documents or ASCII art, auto-detected — so a
//! directory of committed specs (e.g. `examples/fabrics/`) becomes an
//! architecture-comparison experiment with no code change.

use qspr_bench::quick_mode;
use qspr_fabric::{Fabric, RegularFabricSpec, TechParams};
use qspr_qecc::codes::benchmark_suite;
use qspr_sim::{Mapper, MapperPolicy, Placement};

/// The built-in comparison set: pitches around the paper's 45×85 grid
/// plus the junction-free linear fabric.
fn builtin_fabrics() -> Vec<(String, Fabric)> {
    vec![
        ("grid-45x85-p4".to_owned(), Fabric::quale_45x85()),
        (
            "grid-31x61-p3".to_owned(),
            RegularFabricSpec::new(31, 61, 3)
                .build()
                .expect("valid spec"),
        ),
        (
            "grid-49x91-p6".to_owned(),
            RegularFabricSpec::new(49, 91, 6)
                .build()
                .expect("valid spec"),
        ),
        ("linear-24".to_owned(), Fabric::linear(24)),
    ]
}

/// Loads every file in `dir` as a fabric description, sorted by file
/// name for a deterministic sweep order. Exits with a diagnostic on
/// the first unreadable or malformed file.
fn swept_fabrics(dir: &str) -> Vec<(String, Fabric)> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            eprintln!("archcompare: cannot read {dir}: {e}");
            std::process::exit(2);
        })
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("archcompare: no fabric files in {dir}");
        std::process::exit(2);
    }
    paths
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("archcompare: cannot read {}: {e}", path.display());
                std::process::exit(2);
            });
            let fabric = Fabric::parse(&text).unwrap_or_else(|e| {
                eprintln!("archcompare: {}: {e}", path.display());
                std::process::exit(2);
            });
            let name = fabric
                .info()
                .map(|info| info.name.clone())
                .unwrap_or_else(|| {
                    path.file_stem().map_or_else(
                        || path.display().to_string(),
                        |s| s.to_string_lossy().into_owned(),
                    )
                });
            (name, fabric)
        })
        .collect()
}

fn main() {
    let tech = TechParams::date2012();
    let args: Vec<String> = std::env::args().collect();
    let swept = args.iter().any(|a| a == "--fabrics");
    let fabrics = match args.iter().position(|a| a == "--fabrics") {
        Some(i) => match args.get(i + 1) {
            Some(dir) => swept_fabrics(dir),
            None => {
                eprintln!("archcompare: --fabrics needs a directory argument");
                std::process::exit(2);
            }
        },
        None => builtin_fabrics(),
    };

    let take = if quick_mode() { 3 } else { 6 };
    let suite: Vec<_> = benchmark_suite().into_iter().take(take).collect();

    let name_width = fabrics
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0)
        .max("fabric".len());
    print!("{:<name_width$} {:>7} {:>9}", "fabric", "traps", "diameter");
    for bench in &suite {
        print!(" {:>10}", bench.name);
    }
    println!();
    for (name, fabric) in &fabrics {
        let stats = fabric.stats();
        print!(
            "{:<name_width$} {:>7} {:>9}",
            name, stats.traps, stats.junction_diameter_moves
        );
        let mapper = Mapper::new(fabric, tech, MapperPolicy::qspr(&tech));
        for bench in &suite {
            let qubits = bench.program.num_qubits();
            if stats.traps * 2 < qubits {
                print!(" {:>10}", "-");
                continue;
            }
            let placement = Placement::center(fabric, qubits);
            match mapper.map(&bench.program, &placement) {
                Ok(outcome) => print!(" {:>10}", outcome.latency()),
                Err(_) => print!(" {:>10}", "stall"),
            }
        }
        println!();
    }
    println!("\n(latencies in µs, center placement, QSPR policy; '-' = too few traps)");
    if swept {
        return;
    }
    println!("Finding: at the paper's timings (T_turn = 10xT_move) and these circuit");
    println!("sizes, the junction-free linear fabric wins — turns cost more than");
    println!("single-channel serialization up to ~50 qubits. This is consistent with");
    println!("the paper's own emphasis on turn delay as the dominant overhead; 2D");
    println!("fabrics pay off at qubit counts where one channel saturates.");
}
