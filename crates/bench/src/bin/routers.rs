//! Compares the routing engines (greedy vs negotiated congestion)
//! across the QECC benchmark suite, in the paper's standard
//! capacity-2 configuration and in a harsher capacity-1 one.
//!
//! Both engines map from the same deterministic center placement under
//! the same policy, so the delta isolates the routing subsystem. Shape
//! checks (empirical, pinned on this fixed suite — the engine's
//! structural never-worse guarantee is per epoch, not per program):
//! the negotiated engine must never lose on any suite circuit in
//! either configuration, and must strictly win on at least one
//! *congested* case (a mapping whose negotiation actually fired).
//!
//! Usage: `cargo run -p qspr-bench --bin routers --release [--quick]`

use qspr::{Flow, RouterKind};
use qspr_bench::{quick_mode, Workbench};
use qspr_fabric::TechParams;
use qspr_sim::{MapperPolicy, MappingOutcome, Placement};

fn map(
    flow: &Flow,
    kind: RouterKind,
    program: &qspr_qasm::Program,
    policy: MapperPolicy,
) -> MappingOutcome {
    let placement = Placement::center(flow.fabric(), program.num_qubits());
    flow.clone()
        .router(kind)
        .map_with(program, policy, &placement)
        .expect("benchmarks map cleanly")
}

fn main() {
    let quick = quick_mode();
    let wb = if quick {
        Workbench::quick(3)
    } else {
        Workbench::load()
    };
    let flow = Flow::on(wb.fabric);

    let configs: [(&str, TechParams); 2] = [
        ("standard (capacity-2 channels)", TechParams::date2012()),
        (
            "congested (capacity-1 channels)",
            TechParams::date2012().without_multiplexing(),
        ),
    ];

    let mut congested_wins = 0usize;
    for (label, tech) in configs {
        println!("Routing engines — {label}, center placement");
        println!(
            "{:<12} {:>10} {:>13} {:>8} {:>8} | negotiated: iters, ripped, peak",
            "circuit", "greedy µs", "negotiated µs", "delta", "delta %"
        );
        let flow = flow.clone().tech(tech);
        let policy = MapperPolicy::qspr(&tech);
        for bench in &wb.benchmarks {
            let greedy = map(&flow, RouterKind::Greedy, &bench.program, policy);
            let negotiated = map(&flow, RouterKind::Negotiated, &bench.program, policy);
            let (g, n) = (greedy.latency(), negotiated.latency());
            let delta = g as i64 - n as i64;
            let stats = negotiated.routing_stats();
            println!(
                "{:<12} {:>10} {:>13} {:>8} {:>7.2}% | {} iters, {} ripped, peak {}",
                bench.name,
                g,
                n,
                delta,
                100.0 * delta as f64 / g as f64,
                stats.iterations,
                stats.ripped,
                stats.max_pressure,
            );
            assert!(
                n <= g,
                "{} ({label}): negotiated ({n}) must not lose to greedy ({g})",
                bench.name
            );
            // A congested case: the negotiation had real conflicts to
            // resolve (rip-up iterations fired).
            if n < g && stats.iterations > 0 {
                congested_wins += 1;
            }
        }
        println!();
    }
    if quick {
        // The quick suite keeps only the three small circuits, which
        // map congestion-free; the strict-win check needs the big ones.
        println!("Shape checks passed (quick): negotiated <= greedy everywhere.");
        return;
    }
    assert!(
        congested_wins >= 1,
        "negotiated routing must strictly beat greedy on at least one congested circuit"
    );
    println!(
        "Shape checks passed: negotiated <= greedy everywhere, {congested_wins} strict win(s) under congestion."
    );
}
