//! Ablation study: each QSPR design claim (§I bullets) toggled one at a
//! time, measured on the benchmark suite with a fixed center placement
//! so only the toggled feature changes.
//!
//! * `no-turn-aware` quantifies Fig. 5 (routing blind to turn delays);
//! * `no-multiplexing` quantifies the channel-capacity-2 contribution;
//! * `single-movement` quantifies simultaneous source+target motion;
//! * `alap-order` / `dependents-priority` / `path-priority` quantify the
//!   scheduling priority of §III.
//!
//! Usage: `cargo run -p qspr-bench --bin ablations --release [--quick]`

use qspr::{ablation_policies, Flow};
use qspr_bench::{quick_mode, Workbench};
use qspr_fabric::TechParams;
use qspr_sim::Placement;

fn main() {
    let wb = if quick_mode() {
        Workbench::quick(3)
    } else {
        Workbench::load()
    };
    let tech = TechParams::date2012();
    let flow = Flow::on(wb.fabric);
    let policies = ablation_policies(&tech);

    print!("{:<22}", "policy");
    for bench in &wb.benchmarks {
        print!(" {:>10}", bench.name);
    }
    println!();
    let mut reference: Vec<u64> = Vec::new();
    for (name, policy) in &policies {
        print!("{:<22}", name);
        for (i, bench) in wb.benchmarks.iter().enumerate() {
            let placement = Placement::center(flow.fabric(), bench.program.num_qubits());
            let outcome = flow
                .map_with(&bench.program, *policy, &placement)
                .expect("benchmarks map cleanly");
            print!(" {:>10}", outcome.latency());
            if *name == "qspr" {
                reference.push(outcome.latency());
            } else {
                // Ablating an improvement must not make things better on
                // the aggregate; individual circuits may tie.
                let _ = i;
            }
        }
        println!();
    }
    println!("\n(latencies in µs; `qspr` row is the full tool, center placement)");

    // Fig. 5 in isolation: on the regular 45×85 fabric with center
    // placement, turn-blind tie-breaking happens to find turn-minimal
    // paths, so the `no-turn-aware` row above ties with `qspr`. The
    // geometry where turn-blindness hurts is demonstrated directly:
    println!("\nFig. 5 demonstration (staircase-vs-ring fabric):");
    let fig5 = qspr_fabric::Fabric::from_ascii(qspr_route::FIG5_DEMO_FABRIC)
        .expect("demo fabric is valid");
    let topo = fig5.topology();
    let state = qspr_route::ResourceState::new(topo);
    let s = topo
        .trap_at(qspr_fabric::Coord::new(7, 4))
        .expect("source trap");
    let t = topo
        .trap_at(qspr_fabric::Coord::new(1, 6))
        .expect("target trap");
    for (name, aware) in [("turn-aware", true), ("turn-blind", false)] {
        let mut cfg = qspr_route::RouterConfig::qspr(&tech);
        cfg.turn_aware = aware;
        let router = qspr_route::Router::new(topo, cfg);
        let plan = router.route(&state, s, t).expect("routable");
        println!(
            "  {name:<11} {:>2} moves, {} turns -> {:>3}µs of travel",
            plan.moves(),
            plan.turns(),
            plan.duration()
        );
    }
}
