//! Sensitivity of the MVFB placer to the number of random seeds `m`
//! (discussed in §IV.A and §V.B of the paper: more seeds never hurt,
//! m=100 beats m=25).
//!
//! Usage: `cargo run -p qspr-bench --bin sensitivity --release [--quick]`

use qspr::Flow;
use qspr_bench::{quick_mode, Workbench};

fn main() {
    let ms: &[usize] = if quick_mode() {
        &[1, 5, 10]
    } else {
        &[1, 5, 10, 25, 50, 100]
    };
    let wb = if quick_mode() {
        Workbench::quick(3)
    } else {
        Workbench::load()
    };
    let flow = Flow::on(wb.fabric);

    println!("Sensitivity of QSPR latency to the MVFB seed count m");
    print!("{:<12}", "circuit");
    for m in ms {
        print!(" {:>8}", format!("m={m}"));
    }
    println!(" {:>10}", "runs@max");
    for bench in &wb.benchmarks {
        print!("{:<12}", bench.name);
        let mut last_latency = u64::MAX;
        let mut runs_at_max = 0;
        for &m in ms {
            let result = flow
                .clone()
                .seeds(m)
                .run(&bench.program)
                .expect("maps cleanly");
            print!(" {:>8}", result.latency);
            // Larger m keeps a superset of seeds: latency is monotone.
            assert!(
                result.latency <= last_latency,
                "{}: m={m} regressed",
                bench.name
            );
            last_latency = result.latency;
            runs_at_max = result.runs;
        }
        println!(" {:>10}", runs_at_max);
    }
    println!("\nShape check passed: latency is non-increasing in m.");
}
