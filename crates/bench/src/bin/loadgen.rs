//! Load generator, latency harness and correctness oracle for
//! `qspr serve`.
//!
//! Drives N persistent keep-alive connections against a running
//! service and asserts that every response matches what the library
//! (and therefore `qspr map --format json` / `qspr compare --format
//! json`) produces locally for the same inputs:
//!
//! * `/map` responses must equal the local [`FlowSummary`] JSON
//!   *modulo the `"timing"` object* (placement wall-clock — the one
//!   non-deterministic part of the schema), and repeated requests must
//!   be **byte-identical** timing included, because the cache replays
//!   the stored cold response;
//! * `/compare` responses carry no clock and must be byte-identical to
//!   the local [`ComparisonRow`] JSON, always;
//! * `/batch` responses must be byte-identical to the JSON array of
//!   the local comparison rows, in input order — and must share cache
//!   entries with `/compare`;
//! * `/sta` responses carry no clock either: every response must be
//!   byte-identical to the first;
//! * `/stats` counters must add up (hits + misses = map + compare +
//!   sta requests + batch programs, hits > 0 once the workload repeats
//!   itself) and the summed `qspr_http_requests_total` samples on
//!   `/metrics` must equal the `/stats` request counter;
//! * `/metrics` must serve non-empty Prometheus text in which every
//!   `# TYPE` family has at least one sample line.
//!
//! Every request's wall-clock latency lands in a per-thread
//! [`Histogram`]; the merged distribution is reported as
//! p50/p90/p99/p999 and written to `--bench-out` (default
//! `BENCH_serve.json`, strict `qspr::json` — re-parsed before exit so
//! a malformed artifact fails the run, not a consumer).
//!
//! Two load models: `--mode closed` (default) keeps every connection
//! saturated — the classic closed loop; `--mode open` fires requests
//! on a fixed schedule (`--rate` requests/second across all
//! connections) and measures latency from the *scheduled* arrival, so
//! a slow server cannot hide queueing delay by slowing the arrival
//! process (coordinated omission). `--no-keep-alive` reverts to one
//! connection per request for A/B comparisons against the keep-alive
//! path.
//!
//! `--storm N` switches to the backpressure drill: N threads fire one
//! heavy `/map` each through a barrier and every response must be
//! either a correct 200 or a `429 Too Many Requests` carrying
//! `Retry-After`; at least one of each must be observed, and every
//! rejected request must succeed when retried after the storm. CI
//! runs this against `qspr serve --threads 1 --max-queue 1`.
//!
//! Any violation prints the offending pair and exits non-zero — CI
//! runs `loadgen --quick` against a freshly started server as the
//! service smoke test.
//!
//! Usage: `cargo run -p qspr-bench --release --bin loadgen --
//! --addr 127.0.0.1:7878 [--connections N] [--iters N] [--quick]
//! [--mode closed|open] [--rate RPS] [--no-keep-alive] [--storm N]
//! [--bench-out FILE] [--shutdown]`
//!
//! [`FlowSummary`]: qspr::FlowSummary
//! [`ComparisonRow`]: qspr::ComparisonRow

use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use qspr::json::{JsonArray, JsonObject, JsonValue, ToJson};
use qspr::obs::Histogram;
use qspr::service::{http, normalize_timing};
use qspr::{Flow, FlowPolicy, RouterKind};
use qspr_bench::{parse_flag, quick_mode};
use qspr_fabric::Fabric;
use qspr_qasm::Program;
use qspr_qecc::{codes, encoder};

const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";
const GHZ3: &str = "QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X b,c\n";

/// One request case: the `/map` (and `/compare`) body to send plus the
/// locally computed expected responses.
struct Case {
    label: String,
    map_body: String,
    compare_body: String,
    /// Expected `/map` body with the timing object normalized.
    expect_map: String,
    /// Expected `/compare` body, exact.
    expect_compare: String,
}

/// The full workload: per-case oracles plus one `/batch` request whose
/// expected body is the input-ordered array of the first two cases'
/// comparison rows, and one clock-free `/sta` probe.
struct Workload {
    cases: Vec<Case>,
    batch_body: String,
    expect_batch: String,
    sta_body: String,
}

fn string_flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Builds the workload: every case carries its own expected bytes,
/// computed through the same `Flow` code path the CLI uses.
fn build_workload(quick: bool) -> Workload {
    let five13 = encoder::encoding_circuit(&codes::five_one_three())
        .expect("paper code encodes")
        .to_qasm();
    let mut specs: Vec<(String, String, FlowPolicy, RouterKind, usize)> = vec![
        (
            "bell-qspr-greedy".into(),
            BELL.into(),
            FlowPolicy::Qspr,
            RouterKind::Greedy,
            4,
        ),
        (
            "ghz3-quale-greedy".into(),
            GHZ3.into(),
            FlowPolicy::Quale,
            RouterKind::Greedy,
            4,
        ),
        (
            "five13-qspr-negotiated".into(),
            five13.clone(),
            FlowPolicy::Qspr,
            RouterKind::Negotiated,
            4,
        ),
    ];
    if !quick {
        let steane = encoder::encoding_circuit(&codes::steane())
            .expect("paper code encodes")
            .to_qasm();
        specs.push((
            "five13-qspr-greedy-m8".into(),
            five13,
            FlowPolicy::Qspr,
            RouterKind::Greedy,
            8,
        ));
        specs.push((
            "steane-qspr-greedy".into(),
            steane.clone(),
            FlowPolicy::Qspr,
            RouterKind::Greedy,
            4,
        ));
        specs.push((
            "steane-qpos-greedy".into(),
            steane,
            FlowPolicy::Qpos,
            RouterKind::Greedy,
            4,
        ));
    }

    let fabric = Arc::new(Fabric::quale_45x85());
    let cases: Vec<Case> = specs
        .into_iter()
        .map(|(label, text, policy, router, m)| {
            let program = Program::parse(&text).expect("workload programs parse");
            let flow = Flow::on(Arc::clone(&fabric))
                .policy(policy)
                .router(router)
                .seeds(m);
            let expect_map = normalize_timing(
                &flow
                    .run(&program)
                    .expect("workload programs map")
                    .summary()
                    .to_json(),
            );
            // `/compare` always runs the comparison flow (no policy
            // field), exactly like `qspr compare`.
            let compare_flow = Flow::on(Arc::clone(&fabric)).router(router).seeds(m);
            let expect_compare = compare_flow
                .compare(&label, &program)
                .expect("workload programs compare")
                .to_json();
            let map_body = JsonObject::new()
                .string("program", &text)
                .string("policy", policy.as_str())
                .string("router", router.as_str())
                .number("m", m as u64)
                .build();
            let compare_body = JsonObject::new()
                .string("program", &text)
                .string("name", &label)
                .string("router", router.as_str())
                .number("m", m as u64)
                .build();
            Case {
                label,
                map_body,
                compare_body,
                expect_map,
                expect_compare,
            }
        })
        .collect();

    // The batch request reuses the first two cases (both compare under
    // greedy / m=4) with the same names, so its cache entries are the
    // same entries `/compare` populates — the sharing is part of the
    // contract under test.
    let string_array = |items: &[&str]| {
        let mut array = JsonArray::new();
        for item in items {
            array.push_raw(&format!("\"{}\"", qspr::json::escape(item)));
        }
        array.build()
    };
    let batch_body = JsonObject::new()
        .raw("programs", &string_array(&[BELL, GHZ3]))
        .raw("names", &string_array(&[&cases[0].label, &cases[1].label]))
        .string("router", "greedy")
        .number("m", 4)
        .build();
    let expect_batch = format!("[{},{}]", cases[0].expect_compare, cases[1].expect_compare);
    let sta_body = JsonObject::new()
        .string("program", BELL)
        .number("m", 4)
        .build();
    Workload {
        cases,
        batch_body,
        expect_batch,
        sta_body,
    }
}

/// Waits for `/healthz` to answer (a freshly spawned server may still
/// be binding when CI starts us).
fn await_health(addr: &str) -> Result<(), String> {
    for _ in 0..50 {
        match http::call(addr, "GET", "/healthz", "") {
            Ok(r) if r.status == 200 => return Ok(()),
            _ => thread::sleep(Duration::from_millis(100)),
        }
    }
    Err(format!("service at {addr} did not become healthy"))
}

/// Sends one request over the connection in `client`, transparently
/// (re)connecting — on first use, after a `Connection: close`, or when
/// the server reaped the idle connection between iterations. With
/// `keep_alive` off every request gets a fresh connection, exactly
/// like the pre-keep-alive harness.
fn send(
    client: &mut Option<http::Client>,
    addr: &str,
    keep_alive: bool,
    method: &str,
    path: &str,
    body: &str,
) -> Result<http::Response, String> {
    if !keep_alive {
        return http::call(addr, method, path, body).map_err(|e| format!("{method} {path}: {e}"));
    }
    for retry in [true, false] {
        let usable = client.as_ref().is_some_and(|c| !c.is_closed());
        if !usable {
            *client =
                Some(http::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
        }
        match client
            .as_mut()
            .expect("connected above")
            .send(method, path, body)
        {
            Ok(response) => return Ok(response),
            Err(e) => {
                // A dead keep-alive socket is retried once on a fresh
                // connection; a second failure is the server's fault.
                *client = None;
                if !retry {
                    return Err(format!("{method} {path}: {e}"));
                }
            }
        }
    }
    unreachable!("the retry loop returns")
}

/// Expected response body for one oracle request: `exact` compares
/// bytes verbatim, otherwise the response's `"timing"` object is
/// normalized first (it is the one non-deterministic part of `/map`).
struct Expect<'a> {
    body: &'a str,
    exact: bool,
}

fn check(
    response: &http::Response,
    expect: Expect<'_>,
    label: &str,
    path: &str,
) -> Result<(), String> {
    if response.status != 200 {
        return Err(format!(
            "{label}: POST {path} -> {} {}",
            response.status, response.body
        ));
    }
    let actual = if expect.exact {
        response.body.clone()
    } else {
        normalize_timing(&response.body)
    };
    if actual != expect.body {
        return Err(format!(
            "{label}: {path} response differs from the local oracle\n  expected: {}\n  actual:   {actual}",
            expect.body,
        ));
    }
    Ok(())
}

/// Validates a Prometheus text exposition: non-empty, and every
/// `# TYPE` family is followed by at least one sample line before the
/// next family begins.
fn validate_metrics(text: &str) -> Result<(), String> {
    if text.trim().is_empty() {
        return Err("/metrics body is empty".into());
    }
    let lines: Vec<&str> = text.lines().collect();
    let mut families = 0;
    for (i, line) in lines.iter().enumerate() {
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        families += 1;
        let family = rest
            .split(' ')
            .next()
            .ok_or_else(|| format!("malformed TYPE line: {line}"))?;
        let has_sample = lines[i + 1..]
            .iter()
            .take_while(|l| !l.starts_with("# HELP"))
            .any(|l| l.starts_with(family));
        if !has_sample {
            return Err(format!("metric family {family} has no sample line"));
        }
    }
    if families == 0 {
        return Err(format!("/metrics has no # TYPE lines:\n{text}"));
    }
    Ok(())
}

/// Serializes the merged latency distribution plus run parameters as
/// the committed `BENCH_serve.json` schema.
#[allow(clippy::too_many_arguments)]
fn bench_report(
    mode: &str,
    keep_alive: bool,
    connections: usize,
    iters: usize,
    cases: usize,
    requests: usize,
    wall: Duration,
    latency: &Histogram,
) -> String {
    let mut quantiles = JsonObject::new();
    for (q, key) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
        quantiles = quantiles.number(key, latency.percentile(q).unwrap_or(0));
    }
    JsonObject::new()
        .string("benchmark", "qspr serve latency under concurrent load")
        .string("mode", mode)
        .boolean("keep_alive", keep_alive)
        .number("connections", connections as u64)
        .number("iters", iters as u64)
        .number("cases", cases as u64)
        .number("requests", requests as u64)
        .number("wall_us", wall.as_micros() as u64)
        .number(
            "throughput_rps",
            (requests as f64 / wall.as_secs_f64()) as u64,
        )
        .raw(
            "latency_us",
            &quantiles
                .number("max", latency.max_value())
                .number("count", latency.count())
                .build(),
        )
        .build()
}

/// The backpressure drill: `threads` concurrent heavy `/map` requests
/// released through a barrier against a deliberately tiny admission
/// queue. Every response must be a correct 200 or a 429 with
/// `Retry-After`; both kinds must be observed, and every rejected
/// request must succeed on a calm retry.
fn storm(addr: &str, threads: usize) -> Result<(), String> {
    await_health(addr)?;
    let five13 = encoder::encoding_circuit(&codes::five_one_three())
        .expect("paper code encodes")
        .to_qasm();
    // Distinct seed counts keep every request a cache miss (distinct
    // fingerprints), so each one really occupies the worker pool.
    let body = |m: usize| {
        JsonObject::new()
            .string("program", &five13)
            .number("m", m as u64)
            .build()
    };
    for attempt in 0..3 {
        let base = 4 + attempt * threads;
        let barrier = Arc::new(Barrier::new(threads));
        let mut outcomes: Vec<(usize, http::Response)> = Vec::new();
        thread::scope(|scope| -> Result<(), String> {
            let mut handles = Vec::new();
            for i in 0..threads {
                let barrier = Arc::clone(&barrier);
                let body = body(base + i);
                handles.push(scope.spawn(move || -> Result<http::Response, String> {
                    let mut client =
                        Some(http::Client::connect(addr).map_err(|e| format!("connect: {e}"))?);
                    barrier.wait();
                    send(&mut client, addr, true, "POST", "/map", &body)
                }));
            }
            for (i, handle) in handles.into_iter().enumerate() {
                outcomes.push((i, handle.join().expect("storm worker panicked")?));
            }
            Ok(())
        })?;

        let mut accepted = 0usize;
        let mut rejected: Vec<usize> = Vec::new();
        for (i, response) in &outcomes {
            match response.status {
                200 => accepted += 1,
                429 => {
                    if response.retry_after.is_none() {
                        return Err(format!("429 without Retry-After: {}", response.body));
                    }
                    if !response.body.contains("admission queue") {
                        return Err(format!("unexpected 429 body: {}", response.body));
                    }
                    rejected.push(*i);
                }
                other => return Err(format!("storm request {i} -> {other} {}", response.body)),
            }
        }
        eprintln!(
            "storm attempt {attempt}: {accepted} accepted, {} rejected",
            rejected.len()
        );
        if accepted == 0 {
            return Err("storm: every request was rejected".into());
        }
        if rejected.is_empty() {
            // The pool drained faster than the barrier released the
            // herd; rerun with fresh seed counts before giving up.
            continue;
        }
        // Calm retries of the rejected bodies must all be admitted now,
        // and replay byte-identically from the cache on a second pass.
        let mut client = None;
        for i in rejected {
            let retry = send(&mut client, addr, true, "POST", "/map", &body(base + i))?;
            if retry.status != 200 {
                return Err(format!(
                    "post-storm retry {i} -> {} {}",
                    retry.status, retry.body
                ));
            }
            let replay = send(&mut client, addr, true, "POST", "/map", &body(base + i))?;
            if replay != retry {
                return Err(format!("post-storm replay {i} is not byte-identical"));
            }
        }
        eprintln!("storm: backpressure observed and every rejected request recovered");
        return Ok(());
    }
    Err("storm: no 429 observed in 3 attempts (queue never filled)".into())
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<(), String> {
    let addr = string_flag("--addr").ok_or("loadgen needs --addr host:port")?;
    let quick = quick_mode();
    let shutdown = std::env::args().any(|a| a == "--shutdown");
    if let Some(threads) = string_flag("--storm") {
        let threads: usize = threads
            .parse()
            .map_err(|_| format!("--storm expects a thread count, got {threads:?}"))?;
        storm(&addr, threads.max(2))?;
        if shutdown {
            let bye = http::call(&addr, "POST", "/shutdown", "")
                .map_err(|e| format!("POST /shutdown failed: {e}"))?;
            if bye.status != 200 {
                return Err(format!("shutdown refused: {} {}", bye.status, bye.body));
            }
        }
        return Ok(());
    }
    let connections = parse_flag("--connections", 8);
    let iters = parse_flag("--iters", if quick { 4 } else { 32 });
    let keep_alive = !std::env::args().any(|a| a == "--no-keep-alive");
    let mode = string_flag("--mode").unwrap_or_else(|| "closed".to_owned());
    if mode != "closed" && mode != "open" {
        return Err(format!("--mode expects closed or open, got {mode:?}"));
    }
    let rate = parse_flag("--rate", 400);
    let bench_out = string_flag("--bench-out").unwrap_or_else(|| "BENCH_serve.json".to_owned());

    await_health(&addr)?;
    eprintln!("building expected responses locally (the oracle run)...");
    let workload = Arc::new(build_workload(quick));
    // The /sta oracle is the service's own first answer: the report
    // carries no clock, so every later response must repeat it byte
    // for byte (across cache hits and misses alike).
    let expect_sta = {
        let cold = http::call(&addr, "POST", "/sta", &workload.sta_body)
            .map_err(|e| format!("POST /sta failed: {e}"))?;
        if cold.status != 200 {
            return Err(format!("POST /sta -> {} {}", cold.status, cold.body));
        }
        cold.body
    };
    let per_thread = iters * (workload.cases.len() * 2 + 2);

    eprintln!(
        "driving {connections} connections x {iters} iters x {} cases ({mode} loop, keep-alive {})...",
        workload.cases.len(),
        if keep_alive { "on" } else { "off" },
    );
    let started = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    // One latency histogram per connection (no cross-thread contention
    // on the hot path); merged below. Merged percentiles are exactly
    // the percentiles of the concatenated stream — a golden-tested
    // property of the bucket representation.
    let latency = Histogram::new();
    // Open loop: requests depart on a fixed schedule (one every
    // `interval` per connection) and latency runs from the scheduled
    // departure, so server-side queueing cannot slow the arrival
    // process down and hide itself (coordinated omission).
    let interval = Duration::from_secs_f64(connections as f64 / (rate as f64).max(1.0));
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..connections {
            let workload = Arc::clone(&workload);
            let addr = addr.clone();
            let expect_sta = expect_sta.as_str();
            let mode = mode.as_str();
            handles.push(scope.spawn(move || -> Result<Histogram, String> {
                let local = Histogram::new();
                let mut client: Option<http::Client> = None;
                let epoch = Instant::now();
                let mut sent = 0u32;
                let mut fire = |client: &mut Option<http::Client>,
                                path: &str,
                                body: &str,
                                expect: Expect<'_>,
                                label: &str|
                 -> Result<(), String> {
                    let scheduled = if mode == "open" {
                        let due = epoch + interval * sent;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            thread::sleep(wait);
                        }
                        due
                    } else {
                        Instant::now()
                    };
                    sent += 1;
                    let response = send(client, &addr, keep_alive, "POST", path, body)?;
                    local.record(scheduled.elapsed().as_micros() as u64);
                    check(&response, expect, label, path)
                };
                for i in 0..iters {
                    // Stagger starting offsets so threads collide on
                    // different cases (more cold/warm interleavings).
                    for c in 0..workload.cases.len() {
                        let case = &workload.cases[(c + t + i) % workload.cases.len()];
                        fire(
                            &mut client,
                            "/map",
                            &case.map_body,
                            Expect {
                                body: &case.expect_map,
                                exact: false,
                            },
                            &case.label,
                        )?;
                        fire(
                            &mut client,
                            "/compare",
                            &case.compare_body,
                            Expect {
                                body: &case.expect_compare,
                                exact: true,
                            },
                            &case.label,
                        )?;
                    }
                    fire(
                        &mut client,
                        "/batch",
                        &workload.batch_body,
                        Expect {
                            body: &workload.expect_batch,
                            exact: true,
                        },
                        "batch",
                    )?;
                    fire(
                        &mut client,
                        "/sta",
                        &workload.sta_body,
                        Expect {
                            body: expect_sta,
                            exact: true,
                        },
                        "sta",
                    )?;
                }
                Ok(local)
            }));
        }
        for handle in handles {
            match handle.join().expect("loadgen worker panicked") {
                Ok(local) => latency.merge_from(&local),
                Err(e) => failures.push(e),
            }
        }
    });
    let wall = started.elapsed();
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    let requests = connections * per_thread;
    eprintln!(
        "{requests} concurrent requests ok in {wall:.2?} ({:.0} req/s)",
        requests as f64 / wall.as_secs_f64()
    );
    eprintln!(
        "latency: p50 {}µs | p90 {}µs | p99 {}µs | p999 {}µs | max {}µs",
        latency.percentile(0.5).unwrap_or(0),
        latency.percentile(0.9).unwrap_or(0),
        latency.percentile(0.99).unwrap_or(0),
        latency.percentile(0.999).unwrap_or(0),
        latency.max_value(),
    );

    // Sequential epilogue: with no concurrent cold-path races, the
    // cached response must be byte-identical — cpu_ms included.
    let mut client: Option<http::Client> = None;
    for case in workload.cases.iter() {
        let first = send(
            &mut client,
            &addr,
            keep_alive,
            "POST",
            "/map",
            &case.map_body,
        )?;
        let second = send(
            &mut client,
            &addr,
            keep_alive,
            "POST",
            "/map",
            &case.map_body,
        )?;
        if first != second {
            return Err(format!(
                "{}: cached /map response is not byte-identical\n  first:  {}\n  second: {}",
                case.label, first.body, second.body
            ));
        }
    }
    let batch = send(
        &mut client,
        &addr,
        keep_alive,
        "POST",
        "/batch",
        &workload.batch_body,
    )?;
    if batch.body != workload.expect_batch {
        return Err(format!(
            "cached /batch response drifted\n  expected: {}\n  actual:   {}",
            workload.expect_batch, batch.body
        ));
    }
    eprintln!("cached responses byte-identical across repeats");

    // The counters must add up: every cache lookup belongs to exactly
    // one map/compare/sta request or batch program, and vice versa.
    let stats_body = send(&mut client, &addr, keep_alive, "GET", "/stats", "")?.body;
    let stats =
        JsonValue::parse(&stats_body).map_err(|e| format!("/stats body unparseable: {e}"))?;
    let field = |name: &str| -> Result<u64, String> {
        stats
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("/stats lacks {name:?}: {stats_body}"))
    };
    let lookups = field("map_requests")?
        + field("compare_requests")?
        + field("sta_requests")?
        + field("batch_programs")?;
    let (hits, misses) = (field("cache_hits")?, field("cache_misses")?);
    if hits + misses != lookups {
        return Err(format!(
            "stats don't add up: {hits} hits + {misses} misses != {lookups} cache lookups\n  {stats_body}"
        ));
    }
    if hits == 0 {
        return Err(format!(
            "a repeating workload produced zero cache hits\n  {stats_body}"
        ));
    }
    eprintln!(
        "stats consistent: {} requests, {hits} hits / {misses} misses, {} rejected, busy {}ms",
        field("requests")?,
        field("rejected")?,
        field("busy_us")? / 1000
    );

    // The Prometheus exposition must be well-formed after real load,
    // and its request counter must agree with /stats: the samples are
    // recorded before /metrics renders, so the sum over all
    // endpoint/status labels equals the snapshot taken by the /stats
    // request just above (which counts itself).
    let metrics = send(&mut client, &addr, keep_alive, "GET", "/metrics", "")?;
    if metrics.status != 200 {
        return Err(format!("GET /metrics -> {}", metrics.status));
    }
    validate_metrics(&metrics.body)?;
    let metrics_requests: u64 = metrics
        .body
        .lines()
        .filter(|l| l.starts_with("qspr_http_requests_total{"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    let stats_requests = field("requests")?;
    if metrics_requests != stats_requests {
        return Err(format!(
            "request counters disagree: /metrics sums to {metrics_requests}, /stats says {stats_requests}"
        ));
    }
    eprintln!(
        "/metrics exposition valid ({} families, request counters agree)",
        metrics
            .body
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .count()
    );

    // Write the latency artifact, then re-parse it strictly: a
    // malformed BENCH_serve.json must fail loadgen, not a consumer.
    let report = bench_report(
        &mode,
        keep_alive,
        connections,
        iters,
        workload.cases.len(),
        requests,
        wall,
        &latency,
    );
    std::fs::write(&bench_out, format!("{report}\n"))
        .map_err(|e| format!("writing {bench_out}: {e}"))?;
    let written =
        std::fs::read_to_string(&bench_out).map_err(|e| format!("re-reading {bench_out}: {e}"))?;
    JsonValue::parse(written.trim_end())
        .map_err(|e| format!("{bench_out} is not strict JSON: {e}"))?;
    eprintln!("wrote {bench_out}");

    if shutdown {
        let bye = http::call(&addr, "POST", "/shutdown", "")
            .map_err(|e| format!("POST /shutdown failed: {e}"))?;
        if bye.status != 200 {
            return Err(format!("shutdown refused: {} {}", bye.status, bye.body));
        }
        eprintln!("server asked to shut down");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: FAILED\n{e}");
            ExitCode::FAILURE
        }
    }
}
