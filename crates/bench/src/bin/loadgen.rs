//! Load generator, latency harness and correctness oracle for
//! `qspr serve`.
//!
//! Drives N concurrent connections against a running service and
//! asserts that every response matches what the library (and therefore
//! `qspr map --format json` / `qspr compare --format json`) produces
//! locally for the same inputs:
//!
//! * `/map` responses must equal the local [`FlowSummary`] JSON
//!   *modulo the `"timing"` object* (placement wall-clock — the one
//!   non-deterministic part of the schema), and repeated requests must
//!   be **byte-identical** timing included, because the cache replays
//!   the stored cold response;
//! * `/compare` responses carry no clock and must be byte-identical to
//!   the local [`ComparisonRow`] JSON, always;
//! * `/stats` counters must add up (hits + misses = mapping requests,
//!   hits > 0 once the workload repeats itself);
//! * `/metrics` must serve non-empty Prometheus text in which every
//!   `# TYPE` family has at least one sample line.
//!
//! Every request's wall-clock latency lands in a per-thread
//! [`Histogram`]; the merged distribution is
//! reported as p50/p90/p99/p999 and written to `--bench-out`
//! (default `BENCH_serve.json`, strict `qspr::json` — re-parsed before
//! exit so a malformed artifact fails the run, not a consumer).
//!
//! Any violation prints the offending pair and exits non-zero — CI
//! runs `loadgen --quick` against a freshly started server as the
//! service smoke test.
//!
//! Usage: `cargo run -p qspr-bench --release --bin loadgen --
//! --addr 127.0.0.1:7878 [--connections N] [--iters N] [--quick]
//! [--bench-out FILE] [--shutdown]`
//!
//! [`FlowSummary`]: qspr::FlowSummary
//! [`ComparisonRow`]: qspr::ComparisonRow

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qspr::json::{JsonObject, JsonValue, ToJson};
use qspr::obs::Histogram;
use qspr::service::{http, normalize_timing};
use qspr::{Flow, FlowPolicy, RouterKind};
use qspr_bench::{parse_flag, quick_mode};
use qspr_fabric::Fabric;
use qspr_qasm::Program;
use qspr_qecc::{codes, encoder};

/// One request case: the `/map` (and `/compare`) body to send plus the
/// locally computed expected responses.
struct Case {
    label: String,
    map_body: String,
    compare_body: String,
    /// Expected `/map` body with the timing object normalized.
    expect_map: String,
    /// Expected `/compare` body, exact.
    expect_compare: String,
}

fn string_flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Builds the workload: every case carries its own expected bytes,
/// computed through the same `Flow` code path the CLI uses.
fn build_cases(quick: bool) -> Vec<Case> {
    const BELL: &str = "QUBIT a\nQUBIT b\nH a\nC-X a,b\n";
    const GHZ3: &str = "QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X b,c\n";
    let five13 = encoder::encoding_circuit(&codes::five_one_three())
        .expect("paper code encodes")
        .to_qasm();
    let mut specs: Vec<(String, String, FlowPolicy, RouterKind, usize)> = vec![
        (
            "bell-qspr-greedy".into(),
            BELL.into(),
            FlowPolicy::Qspr,
            RouterKind::Greedy,
            4,
        ),
        (
            "ghz3-quale-greedy".into(),
            GHZ3.into(),
            FlowPolicy::Quale,
            RouterKind::Greedy,
            4,
        ),
        (
            "five13-qspr-negotiated".into(),
            five13.clone(),
            FlowPolicy::Qspr,
            RouterKind::Negotiated,
            4,
        ),
    ];
    if !quick {
        let steane = encoder::encoding_circuit(&codes::steane())
            .expect("paper code encodes")
            .to_qasm();
        specs.push((
            "five13-qspr-greedy-m8".into(),
            five13,
            FlowPolicy::Qspr,
            RouterKind::Greedy,
            8,
        ));
        specs.push((
            "steane-qspr-greedy".into(),
            steane.clone(),
            FlowPolicy::Qspr,
            RouterKind::Greedy,
            4,
        ));
        specs.push((
            "steane-qpos-greedy".into(),
            steane,
            FlowPolicy::Qpos,
            RouterKind::Greedy,
            4,
        ));
    }

    let fabric = Arc::new(Fabric::quale_45x85());
    specs
        .into_iter()
        .map(|(label, text, policy, router, m)| {
            let program = Program::parse(&text).expect("workload programs parse");
            let flow = Flow::on(Arc::clone(&fabric))
                .policy(policy)
                .router(router)
                .seeds(m);
            let expect_map = normalize_timing(
                &flow
                    .run(&program)
                    .expect("workload programs map")
                    .summary()
                    .to_json(),
            );
            // `/compare` always runs the comparison flow (no policy
            // field), exactly like `qspr compare`.
            let compare_flow = Flow::on(Arc::clone(&fabric)).router(router).seeds(m);
            let expect_compare = compare_flow
                .compare(&label, &program)
                .expect("workload programs compare")
                .to_json();
            let map_body = JsonObject::new()
                .string("program", &text)
                .string("policy", policy.as_str())
                .string("router", router.as_str())
                .number("m", m as u64)
                .build();
            let compare_body = JsonObject::new()
                .string("program", &text)
                .string("name", &label)
                .string("router", router.as_str())
                .number("m", m as u64)
                .build();
            Case {
                label,
                map_body,
                compare_body,
                expect_map,
                expect_compare,
            }
        })
        .collect()
}

/// Waits for `/healthz` to answer (a freshly spawned server may still
/// be binding when CI starts us).
fn await_health(addr: &str) -> Result<(), String> {
    for _ in 0..50 {
        match http::call(addr, "GET", "/healthz", "") {
            Ok(r) if r.status == 200 => return Ok(()),
            _ => thread::sleep(Duration::from_millis(100)),
        }
    }
    Err(format!("service at {addr} did not become healthy"))
}

/// Expected response body for one oracle request: `exact` compares
/// bytes verbatim, otherwise the response's `"timing"` object is
/// normalized first (it is the one non-deterministic part of `/map`).
struct Expect<'a> {
    body: &'a str,
    exact: bool,
}

fn check(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    expect: Expect<'_>,
    label: &str,
    latency: &Histogram,
) -> Result<(), String> {
    let t0 = Instant::now();
    let response = http::call(addr, method, path, body)
        .map_err(|e| format!("{label}: {method} {path} failed: {e}"))?;
    latency.record(t0.elapsed().as_micros() as u64);
    if response.status != 200 {
        return Err(format!(
            "{label}: {method} {path} -> {} {}",
            response.status, response.body
        ));
    }
    let actual = if expect.exact {
        response.body.clone()
    } else {
        normalize_timing(&response.body)
    };
    let expect = expect.body;
    if actual != expect {
        return Err(format!(
            "{label}: {path} response differs from `qspr {} --format json`\n  expected: {expect}\n  actual:   {actual}",
            if path == "/map" { "map" } else { "compare" },
        ));
    }
    Ok(())
}

/// Validates a Prometheus text exposition: non-empty, and every
/// `# TYPE` family is followed by at least one sample line before the
/// next family begins.
fn validate_metrics(text: &str) -> Result<(), String> {
    if text.trim().is_empty() {
        return Err("/metrics body is empty".into());
    }
    let lines: Vec<&str> = text.lines().collect();
    let mut families = 0;
    for (i, line) in lines.iter().enumerate() {
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        families += 1;
        let family = rest
            .split(' ')
            .next()
            .ok_or_else(|| format!("malformed TYPE line: {line}"))?;
        let has_sample = lines[i + 1..]
            .iter()
            .take_while(|l| !l.starts_with("# HELP"))
            .any(|l| l.starts_with(family));
        if !has_sample {
            return Err(format!("metric family {family} has no sample line"));
        }
    }
    if families == 0 {
        return Err(format!("/metrics has no # TYPE lines:\n{text}"));
    }
    Ok(())
}

/// Serializes the merged latency distribution plus run parameters as
/// the committed `BENCH_serve.json` schema.
fn bench_report(
    connections: usize,
    iters: usize,
    cases: usize,
    requests: usize,
    wall: Duration,
    latency: &Histogram,
) -> String {
    let mut quantiles = JsonObject::new();
    for (q, key) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
        quantiles = quantiles.number(key, latency.percentile(q).unwrap_or(0));
    }
    JsonObject::new()
        .string("benchmark", "qspr serve latency under concurrent load")
        .number("connections", connections as u64)
        .number("iters", iters as u64)
        .number("cases", cases as u64)
        .number("requests", requests as u64)
        .number("wall_us", wall.as_micros() as u64)
        .number(
            "throughput_rps",
            (requests as f64 / wall.as_secs_f64()) as u64,
        )
        .raw(
            "latency_us",
            &quantiles
                .number("max", latency.max_value())
                .number("count", latency.count())
                .build(),
        )
        .build()
}

fn run() -> Result<(), String> {
    let addr = string_flag("--addr").ok_or("loadgen needs --addr host:port")?;
    let quick = quick_mode();
    let connections = parse_flag("--connections", 8);
    let iters = parse_flag("--iters", if quick { 2 } else { 4 });
    let shutdown = std::env::args().any(|a| a == "--shutdown");
    let bench_out = string_flag("--bench-out").unwrap_or_else(|| "BENCH_serve.json".to_owned());

    await_health(&addr)?;
    eprintln!("building expected responses locally (the oracle run)...");
    let cases = Arc::new(build_cases(quick));
    let total_per_thread = iters * cases.len() * 2;

    eprintln!(
        "driving {connections} connections x {iters} iters x {} cases...",
        cases.len()
    );
    let started = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    // One latency histogram per connection (no cross-thread contention
    // on the hot path); merged below. Merged percentiles are exactly
    // the percentiles of the concatenated stream — a golden-tested
    // property of the bucket representation.
    let latency = Histogram::new();
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..connections {
            let cases = Arc::clone(&cases);
            let addr = addr.clone();
            handles.push(scope.spawn(move || -> Result<Histogram, String> {
                let local = Histogram::new();
                for i in 0..iters {
                    // Stagger starting offsets so threads collide on
                    // different cases (more cold/warm interleavings).
                    for c in 0..cases.len() {
                        let case = &cases[(c + t + i) % cases.len()];
                        check(
                            &addr,
                            "POST",
                            "/map",
                            &case.map_body,
                            Expect {
                                body: &case.expect_map,
                                exact: false,
                            },
                            &case.label,
                            &local,
                        )?;
                        check(
                            &addr,
                            "POST",
                            "/compare",
                            &case.compare_body,
                            Expect {
                                body: &case.expect_compare,
                                exact: true,
                            },
                            &case.label,
                            &local,
                        )?;
                    }
                }
                Ok(local)
            }));
        }
        for handle in handles {
            match handle.join().expect("loadgen worker panicked") {
                Ok(local) => latency.merge_from(&local),
                Err(e) => failures.push(e),
            }
        }
    });
    let wall = started.elapsed();
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    let requests = connections * total_per_thread;
    eprintln!(
        "{requests} concurrent requests ok in {wall:.2?} ({:.0} req/s)",
        requests as f64 / wall.as_secs_f64()
    );
    eprintln!(
        "latency: p50 {}µs | p90 {}µs | p99 {}µs | p999 {}µs | max {}µs",
        latency.percentile(0.5).unwrap_or(0),
        latency.percentile(0.9).unwrap_or(0),
        latency.percentile(0.99).unwrap_or(0),
        latency.percentile(0.999).unwrap_or(0),
        latency.max_value(),
    );

    // Sequential epilogue: with no concurrent cold-path races, the
    // cached response must be byte-identical — cpu_ms included.
    for case in cases.iter() {
        let first = http::call(&addr, "POST", "/map", &case.map_body)
            .map_err(|e| format!("{}: {e}", case.label))?;
        let second = http::call(&addr, "POST", "/map", &case.map_body)
            .map_err(|e| format!("{}: {e}", case.label))?;
        if first != second {
            return Err(format!(
                "{}: cached /map response is not byte-identical\n  first:  {}\n  second: {}",
                case.label, first.body, second.body
            ));
        }
    }
    eprintln!("cached responses byte-identical across repeats");

    // The counters must add up.
    let stats_body = http::call(&addr, "GET", "/stats", "")
        .map_err(|e| format!("GET /stats failed: {e}"))?
        .body;
    let stats =
        JsonValue::parse(&stats_body).map_err(|e| format!("/stats body unparseable: {e}"))?;
    let field = |name: &str| -> Result<u64, String> {
        stats
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("/stats lacks {name:?}: {stats_body}"))
    };
    let (map_reqs, cmp_reqs) = (field("map_requests")?, field("compare_requests")?);
    let (hits, misses) = (field("cache_hits")?, field("cache_misses")?);
    if hits + misses != map_reqs + cmp_reqs {
        return Err(format!(
            "stats don't add up: {hits} hits + {misses} misses != {map_reqs} map + {cmp_reqs} compare\n  {stats_body}"
        ));
    }
    if hits == 0 {
        return Err(format!(
            "a repeating workload produced zero cache hits\n  {stats_body}"
        ));
    }
    eprintln!(
        "stats consistent: {} requests, {hits} hits / {misses} misses, busy {}ms",
        field("requests")?,
        field("busy_us")? / 1000
    );

    // The Prometheus exposition must be well-formed after real load.
    let metrics = http::call(&addr, "GET", "/metrics", "")
        .map_err(|e| format!("GET /metrics failed: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("GET /metrics -> {}", metrics.status));
    }
    validate_metrics(&metrics.body)?;
    eprintln!(
        "/metrics exposition valid ({} families)",
        metrics
            .body
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .count()
    );

    // Write the latency artifact, then re-parse it strictly: a
    // malformed BENCH_serve.json must fail loadgen, not a consumer.
    let report = bench_report(connections, iters, cases.len(), requests, wall, &latency);
    std::fs::write(&bench_out, format!("{report}\n"))
        .map_err(|e| format!("writing {bench_out}: {e}"))?;
    let written =
        std::fs::read_to_string(&bench_out).map_err(|e| format!("re-reading {bench_out}: {e}"))?;
    JsonValue::parse(written.trim_end())
        .map_err(|e| format!("{bench_out} is not strict JSON: {e}"))?;
    eprintln!("wrote {bench_out}");

    if shutdown {
        let bye = http::call(&addr, "POST", "/shutdown", "")
            .map_err(|e| format!("POST /shutdown failed: {e}"))?;
        if bye.status != 200 {
            return Err(format!("shutdown refused: {} {}", bye.status, bye.body));
        }
        eprintln!("server asked to shut down");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: FAILED\n{e}");
            ExitCode::FAILURE
        }
    }
}
