//! Routing-performance trajectory: maps the QECC benchmark suite with
//! both routing engines, recording per-circuit wall-clock mapping time
//! alongside latency and congestion stats, and writes the lot to
//! `BENCH_route.json` so successive PRs can compare hot-path speed on
//! identical workloads.
//!
//! Every run uses the deterministic center placement (no placer
//! search), so the wall time isolates the scheduling + routing +
//! simulation hot path and the latencies double as a byte-identity
//! check across router rewrites.
//!
//! Usage: `cargo run -p qspr-bench --bin perf --release [--quick]
//! [--out <path>]`
//!
//! Output schema (one object):
//!
//! * `fabric`, `quick` — workload provenance;
//! * `engines[]` — per engine (`greedy`, `negotiated`):
//!   * `suite_wall_ms` — total wall-clock of mapping the whole suite;
//!   * `results[]` — per circuit: `latency_us`, `wall_us`, and the
//!     engine's cumulative `epochs` / `rip_iterations` /
//!     `ripped_routes` / `max_segment_pressure`.

use std::time::Instant;

use qspr::json::{JsonArray, JsonObject};
use qspr::{Flow, RouterKind};
use qspr_bench::{quick_mode, Workbench};
use qspr_fabric::TechParams;
use qspr_sim::{MapperPolicy, Placement};

fn out_path() -> String {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(v) = args.next() {
                return v;
            }
        }
    }
    "BENCH_route.json".to_owned()
}

fn main() {
    let quick = quick_mode();
    let wb = if quick {
        Workbench::quick(3)
    } else {
        Workbench::load()
    };
    let tech = TechParams::date2012();
    let flow = Flow::on(wb.fabric).tech(tech);
    let policy = MapperPolicy::qspr(&tech);

    let mut engines = JsonArray::new();
    println!(
        "Routing perf — center placement, {} circuits",
        wb.benchmarks.len()
    );
    for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
        let flow = flow.clone().router(kind);
        let mut results = JsonArray::new();
        let suite_start = Instant::now();
        let mut suite_wall_us = 0u64;
        println!(
            "{:<12} {:>11} {:>10} | {kind}: epochs, iters, ripped, peak",
            "circuit", "latency µs", "wall µs"
        );
        for bench in &wb.benchmarks {
            let placement = Placement::center(flow.fabric(), bench.program.num_qubits());
            let t0 = Instant::now();
            let outcome = flow
                .map_with(&bench.program, policy, &placement)
                .expect("benchmarks map cleanly");
            let wall_us = t0.elapsed().as_micros() as u64;
            suite_wall_us += wall_us;
            let stats = outcome.routing_stats();
            println!(
                "{:<12} {:>11} {:>10} | {} epochs, {} iters, {} ripped, peak {}",
                bench.name,
                outcome.latency(),
                wall_us,
                stats.epochs,
                stats.iterations,
                stats.ripped,
                stats.max_pressure,
            );
            results.push_raw(
                &JsonObject::new()
                    .string("circuit", &bench.name)
                    .number("latency_us", outcome.latency())
                    .number("wall_us", wall_us)
                    .number("epochs", stats.epochs)
                    .number("rip_iterations", stats.iterations)
                    .number("ripped_routes", stats.ripped)
                    .number("max_segment_pressure", u64::from(stats.max_pressure))
                    .build(),
            );
        }
        let suite_wall_ms = suite_start.elapsed().as_millis() as u64;
        println!("{kind} suite wall: {suite_wall_ms} ms\n");
        engines.push_raw(
            &JsonObject::new()
                .string("router", kind.as_str())
                .number("suite_wall_ms", suite_wall_ms)
                .number("suite_wall_us", suite_wall_us)
                .raw("results", &results.build())
                .build(),
        );
    }

    let report = JsonObject::new()
        .string("fabric", "quale_45x85")
        .boolean("quick", quick)
        .raw("engines", &engines.build())
        .build();
    let path = out_path();
    std::fs::write(&path, format!("{report}\n")).expect("writable output path");
    println!("wrote {path}");
}
