//! Routing-performance trajectory: maps the QECC benchmark suite with
//! both routing engines, recording per-circuit wall-clock mapping time
//! alongside latency and congestion stats, and writes the lot to
//! `BENCH_route.json` so successive PRs can compare hot-path speed on
//! identical workloads.
//!
//! Every run uses the deterministic center placement (no placer
//! search), so the wall time isolates the scheduling + routing +
//! simulation hot path and the latencies double as a byte-identity
//! check across router rewrites.
//!
//! A second report, `BENCH_sta.json`, tracks the `qspr-sta` timing
//! analysis on the same workloads: per-circuit analysis wall time
//! (the cost of reconstructing slack and the critical path from a
//! recorded trace) and the latency delta of the slack-aware feedback
//! mode against the plain negotiated flow, which by construction must
//! never be negative.
//!
//! Usage: `cargo run -p qspr-bench --bin perf --release [--quick]
//! [--out <path>] [--sta-out <path>]`
//!
//! `BENCH_route.json` schema (one object):
//!
//! * `fabric`, `quick` — workload provenance;
//! * `engines[]` — per engine (`greedy`, `negotiated`):
//!   * `suite_wall_ms` — total wall-clock of mapping the whole suite;
//!   * `jobs1_wall_us` / `jobs4_wall_us` — the threads axis: the same
//!     suite swept under `--jobs 1` and `--jobs 4` (min of N sweeps);
//!     the harness asserts jobs=4 never loses to jobs=1 beyond noise;
//!   * `results[]` — per circuit: `latency_us`, `wall_us`, and the
//!     engine's cumulative `epochs` / `rip_iterations` /
//!     `ripped_routes` / `max_segment_pressure`.
//!
//! `BENCH_sta.json` schema (one object):
//!
//! * `fabric`, `quick` — workload provenance;
//! * `analysis[]` — per circuit (center placement, recorded trace):
//!   `latency_us`, `analysis_wall_us`, `critical_steps`,
//!   `trace_commands`;
//! * `feedback[]` — per circuit (MVFB m=4, negotiated router):
//!   `negotiated_us`, `feedback_us`, `saved_us` (≥ 0), `wall_us` of
//!   the whole feedback run (pilot + analysis + re-run).

use std::time::Instant;

use qspr::json::{JsonArray, JsonObject};
use qspr::sta::TimingAnalysis;
use qspr::{Flow, RouterKind};
use qspr_bench::{quick_mode, Workbench};
use qspr_fabric::TechParams;
use qspr_sim::{Mapper, MapperPolicy, Placement};

fn path_flag(flag: &str, default: &str) -> String {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.next() {
                return v;
            }
        }
    }
    default.to_owned()
}

fn main() {
    let quick = quick_mode();
    let wb = if quick {
        Workbench::quick(3)
    } else {
        Workbench::load()
    };
    let tech = TechParams::date2012();
    let flow = Flow::on(wb.fabric).tech(tech);
    let policy = MapperPolicy::qspr(&tech);

    let mut engines = JsonArray::new();
    println!(
        "Routing perf — center placement, {} circuits",
        wb.benchmarks.len()
    );
    for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
        let flow = flow.clone().router(kind);
        let mut results = JsonArray::new();
        let suite_start = Instant::now();
        let mut suite_wall_us = 0u64;
        println!(
            "{:<12} {:>11} {:>10} | {kind}: epochs, iters, ripped, peak",
            "circuit", "latency µs", "wall µs"
        );
        for bench in &wb.benchmarks {
            let placement = Placement::center(flow.fabric(), bench.program.num_qubits());
            let t0 = Instant::now();
            let outcome = flow
                .map_with(&bench.program, policy, &placement)
                .expect("benchmarks map cleanly");
            let wall_us = t0.elapsed().as_micros() as u64;
            suite_wall_us += wall_us;
            let stats = outcome.routing_stats();
            println!(
                "{:<12} {:>11} {:>10} | {} epochs, {} iters, {} ripped, peak {}",
                bench.name,
                outcome.latency(),
                wall_us,
                stats.epochs,
                stats.iterations,
                stats.ripped,
                stats.max_pressure,
            );
            results.push_raw(
                &JsonObject::new()
                    .string("circuit", &bench.name)
                    .number("latency_us", outcome.latency())
                    .number("wall_us", wall_us)
                    .number("epochs", stats.epochs)
                    .number("rip_iterations", stats.iterations)
                    .number("ripped_routes", stats.ripped)
                    .number("max_segment_pressure", u64::from(stats.max_pressure))
                    .build(),
            );
        }
        let suite_wall_ms = suite_start.elapsed().as_millis() as u64;
        // Threads axis: the whole suite swept again under --jobs 1 and
        // --jobs 4 (min of N sweeps to damp scheduler noise). Results
        // are byte-identical by contract, so only the wall moves; on a
        // many-core host jobs=4 should win, and on any host it must
        // not lose beyond noise — the parallel layers degrade to the
        // sequential path when cores are scarce, so the margin below
        // is generous (1.5x plus absolute slop for sub-ms suites).
        let sweeps = if quick { 2 } else { 3 };
        let wall_at = |jobs: usize| -> u64 {
            let flow = flow.clone().jobs(jobs);
            (0..sweeps)
                .map(|_| {
                    let t0 = Instant::now();
                    for bench in &wb.benchmarks {
                        let placement =
                            Placement::center(flow.fabric(), bench.program.num_qubits());
                        flow.map_with(&bench.program, policy, &placement)
                            .expect("benchmarks map cleanly");
                    }
                    t0.elapsed().as_micros() as u64
                })
                .min()
                .expect("at least one sweep")
        };
        let jobs1_wall_us = wall_at(1);
        let jobs4_wall_us = wall_at(4);
        println!(
            "{kind} suite wall: {suite_wall_ms} ms | jobs=1 {jobs1_wall_us} µs, \
             jobs=4 {jobs4_wall_us} µs (min of {sweeps})\n"
        );
        assert!(
            jobs4_wall_us as f64 <= jobs1_wall_us as f64 * 1.5 + 20_000.0,
            "{kind}: --jobs 4 suite wall {jobs4_wall_us} µs regressed past \
             --jobs 1 ({jobs1_wall_us} µs) beyond noise"
        );
        engines.push_raw(
            &JsonObject::new()
                .string("router", kind.as_str())
                .number("suite_wall_ms", suite_wall_ms)
                .number("suite_wall_us", suite_wall_us)
                .number("jobs1_wall_us", jobs1_wall_us)
                .number("jobs4_wall_us", jobs4_wall_us)
                .raw("results", &results.build())
                .build(),
        );
    }

    // --- Observability overhead pin ---------------------------------
    //
    // The span instrumentation woven through the pipeline must stay
    // near-free when no sink is installed. The pin is machine-portable:
    // both sides of the comparison are measured fresh on this machine —
    // (a) the disabled per-span cost from a tight calibration loop, and
    // (b) the wall time and span count of mapping the largest suite
    // circuit — so the assertion compares like with like instead of
    // trusting committed numbers from other hardware.
    let obs = {
        let bench = wb.benchmarks.last().expect("suite is non-empty");
        let flow = flow.clone().router(RouterKind::Greedy);
        let placement = Placement::center(flow.fabric(), bench.program.num_qubits());
        assert!(
            !qspr::obs::enabled(),
            "perf must run without a span sink installed"
        );
        // Uninstrumented wall: best of 3 (the pin should not fail on a
        // one-off scheduler hiccup in the baseline).
        let map_wall_us = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                flow.map_with(&bench.program, policy, &placement)
                    .expect("benchmarks map cleanly");
                t0.elapsed().as_micros() as u64
            })
            .min()
            .expect("three runs");
        // Disabled per-span cost: one relaxed atomic load plus an inert
        // guard, amortized over a tight loop.
        const PROBES: u64 = 5_000_000;
        let t0 = Instant::now();
        for _ in 0..PROBES {
            let _guard = qspr::obs::span("probe");
        }
        let per_span_ns = t0.elapsed().as_nanos() as f64 / PROBES as f64;
        // Span count of the same map, via a thread-local collector (so
        // a parallel test run can never observe our sink).
        let collector = std::sync::Arc::new(qspr::obs::Collector::new());
        let guard = qspr::obs::install_thread(std::sync::Arc::clone(&collector) as _);
        flow.map_with(&bench.program, policy, &placement)
            .expect("benchmarks map cleanly");
        drop(guard);
        let spans_per_map = collector.total_spans();
        let overhead_ns = spans_per_map as f64 * per_span_ns;
        let overhead_pct = 100.0 * overhead_ns / (map_wall_us as f64 * 1000.0);
        println!(
            "\nObs overhead — {}: {spans_per_map} spans x {per_span_ns:.2} ns disabled = \
             {:.1} µs over a {map_wall_us} µs map ({overhead_pct:.3}%)",
            bench.name,
            overhead_ns / 1000.0,
        );
        assert!(
            overhead_pct < 2.0,
            "disabled span instrumentation costs {overhead_pct:.3}% of the {} map \
             ({spans_per_map} spans x {per_span_ns:.2} ns vs {map_wall_us} µs wall)",
            bench.name
        );
        JsonObject::new()
            .string("circuit", &bench.name)
            .float("per_span_disabled_ns", per_span_ns)
            .number("spans_per_map", spans_per_map)
            .number("map_wall_us", map_wall_us)
            .float("overhead_pct", overhead_pct)
            .build()
    };

    let report = JsonObject::new()
        .string("fabric", "quale_45x85")
        .boolean("quick", quick)
        .raw("engines", &engines.build())
        .raw("obs", &obs)
        .build();
    let path = path_flag("--out", "BENCH_route.json");
    std::fs::write(&path, format!("{report}\n")).expect("writable output path");
    println!("wrote {path}");

    // --- Timing-analysis trajectory (BENCH_sta.json) ----------------

    let analyzer = TimingAnalysis::new(flow.fabric(), tech);
    let mut analysis = JsonArray::new();
    println!(
        "\nSTA analysis — center placement, recorded traces\n{:<12} {:>11} {:>11} {:>6} {:>9}",
        "circuit", "latency µs", "analyze µs", "steps", "commands"
    );
    for bench in &wb.benchmarks {
        let placement = Placement::center(flow.fabric(), bench.program.num_qubits());
        let outcome = Mapper::new(flow.fabric(), tech, policy)
            .record_trace(true)
            .map(&bench.program, &placement)
            .expect("benchmarks map cleanly");
        let trace_commands = outcome.trace().expect("recorded").len() as u64;
        let t0 = Instant::now();
        let report = analyzer
            .analyze(&bench.program, &outcome)
            .expect("traced outcomes analyze");
        let analysis_wall_us = t0.elapsed().as_micros() as u64;
        assert_eq!(
            report.critical_end(),
            Some(outcome.latency()),
            "{}: critical path must end at the makespan",
            bench.name
        );
        println!(
            "{:<12} {:>11} {:>11} {:>6} {:>9}",
            bench.name,
            outcome.latency(),
            analysis_wall_us,
            report.critical_path().len(),
            trace_commands,
        );
        analysis.push_raw(
            &JsonObject::new()
                .string("circuit", &bench.name)
                .number("latency_us", outcome.latency())
                .number("analysis_wall_us", analysis_wall_us)
                .number("critical_steps", report.critical_path().len() as u64)
                .number("trace_commands", trace_commands)
                .build(),
        );
    }

    let mut feedback = JsonArray::new();
    let fb_flow = flow.clone().router(RouterKind::Negotiated).seeds(4);
    println!(
        "\nSTA feedback — negotiated pilot, MVFB m=4\n{:<12} {:>13} {:>11} {:>9} {:>9}",
        "circuit", "negotiated µs", "feedback µs", "saved µs", "wall µs"
    );
    for bench in &wb.benchmarks {
        let plain = fb_flow.run(&bench.program).expect("benchmarks map cleanly");
        let t0 = Instant::now();
        let fed = fb_flow
            .clone()
            .sta_feedback(true)
            .run(&bench.program)
            .expect("benchmarks map cleanly");
        let wall_us = t0.elapsed().as_micros() as u64;
        // The driver is best-of-two with the plain run as its pilot,
        // so a regression here is a bug, not a bad day.
        assert!(
            fed.latency <= plain.latency,
            "{}: feedback {} exceeds plain negotiated {}",
            bench.name,
            fed.latency,
            plain.latency
        );
        let saved_us = plain.latency - fed.latency;
        println!(
            "{:<12} {:>13} {:>11} {:>9} {:>9}",
            bench.name, plain.latency, fed.latency, saved_us, wall_us,
        );
        feedback.push_raw(
            &JsonObject::new()
                .string("circuit", &bench.name)
                .number("negotiated_us", plain.latency)
                .number("feedback_us", fed.latency)
                .number("saved_us", saved_us)
                .number("wall_us", wall_us)
                .build(),
        );
    }

    let sta_report = JsonObject::new()
        .string("fabric", "quale_45x85")
        .boolean("quick", quick)
        .raw("analysis", &analysis.build())
        .raw("feedback", &feedback.build())
        .build();
    let sta_path = path_flag("--sta-out", "BENCH_sta.json");
    std::fs::write(&sta_path, format!("{sta_report}\n")).expect("writable output path");
    println!("wrote {sta_path}");
}
