//! Fidelity experiment (extension): the paper's motivation — lower
//! mapped latency means less absorbed noise — quantified with the
//! first-order ion-trap noise model.
//!
//! Usage: `cargo run -p qspr-bench --bin fidelity --release [--m N]`

use qspr::{Flow, FlowPolicy, NoiseModel};
use qspr_bench::{parse_flag, Workbench};

fn main() {
    let m = parse_flag("--m", 10);
    let wb = Workbench::load();
    let flow = Flow::on(wb.fabric).seeds(m);
    let quale_flow = flow.clone().policy(FlowPolicy::Quale);
    let model = NoiseModel::ion_trap_2012();

    println!(
        "Estimated success probabilities (T2 = {}µs, MVFB m={m}):",
        model.t2
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "circuit", "QSPR µs", "QUALE µs", "P(QSPR)", "P(QUALE)", "fidelity gain"
    );
    for bench in &wb.benchmarks {
        let qspr = flow.run(&bench.program).expect("maps");
        let quale = quale_flow.run(&bench.program).expect("maps").outcome;
        let p_qspr = model.success_probability(&bench.program, &qspr.outcome);
        let p_quale = model.success_probability(&bench.program, &quale);
        println!(
            "{:<12} {:>10} {:>10} {:>10.4} {:>10.4} {:>11.2}%",
            bench.name,
            qspr.latency,
            quale.latency(),
            p_qspr,
            p_quale,
            100.0 * (p_qspr - p_quale) / p_quale,
        );
        assert!(
            p_qspr >= p_quale,
            "{}: QSPR fidelity must not lose",
            bench.name
        );
    }
    println!("\nShape check passed: QSPR's success probability beats QUALE's everywhere.");
}
