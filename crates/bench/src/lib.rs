//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Binaries (run with `--release`):
//!
//! * `table1` — MVFB vs Monte Carlo placers (paper Table 1);
//! * `table2` — ideal baseline vs QUALE vs QSPR (paper Table 2);
//! * `sensitivity` — latency as a function of the MVFB seed count `m`
//!   (the sensitivity analysis discussed in §IV.A/§V);
//! * `ablations` — one QSPR design claim toggled at a time (§I bullets,
//!   Fig. 5's turn-awareness among them).
//!
//! Criterion benches (`cargo bench`): `mappers`, `placers`, `micro`.

use qspr_fabric::Fabric;
use qspr_qecc::codes::{benchmark_suite, Benchmark};

/// The paper's Table 2 reference values: (circuit, baseline, QUALE,
/// QSPR) execution latencies in µs.
pub const PAPER_TABLE2: [(&str, u64, u64, u64); 6] = [
    ("[[5,1,3]]", 510, 832, 634),
    ("[[7,1,3]]", 510, 798, 610),
    ("[[9,1,3]]", 910, 2216, 1159),
    ("[[14,8,3]]", 2500, 7511, 3390),
    ("[[19,1,7]]", 2510, 6838, 3393),
    ("[[23,1,7]]", 1410, 3738, 2066),
];

/// The paper's Table 1 reference values:
/// (circuit, m=25 MVFB µs, m=25 MC µs, m=25 runs, m=100 MVFB µs,
/// m=100 MC µs, m=100 runs).
pub const PAPER_TABLE1: [(&str, u64, u64, u64, u64, u64, u64); 6] = [
    ("[[5,1,3]]", 634, 664, 88, 634, 674, 312),
    ("[[7,1,3]]", 610, 618, 78, 603, 622, 312),
    ("[[9,1,3]]", 1159, 1212, 86, 1138, 1198, 308),
    ("[[14,8,3]]", 3390, 3540, 83, 3342, 3429, 316),
    ("[[19,1,7]]", 3393, 3483, 82, 3350, 3403, 311),
    ("[[23,1,7]]", 2066, 2183, 89, 2061, 2085, 315),
];

/// The experiment substrate: the 45×85 fabric and the six benchmark
/// circuits, loaded once.
pub struct Workbench {
    /// The QUALE-style 45×85 fabric every experiment uses.
    pub fabric: Fabric,
    /// The six benchmark circuits in table order.
    pub benchmarks: Vec<Benchmark>,
}

impl Workbench {
    /// Loads the fabric and benchmark suite.
    pub fn load() -> Workbench {
        Workbench {
            fabric: Fabric::quale_45x85(),
            benchmarks: benchmark_suite(),
        }
    }

    /// A reduced suite (first `n` circuits) for quick runs.
    pub fn quick(n: usize) -> Workbench {
        let mut wb = Workbench::load();
        wb.benchmarks.truncate(n);
        wb
    }
}

/// Parses `--m <value>` style flags shared by the binaries.
pub fn parse_flag(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// `true` when `--quick` was passed (reduced circuits / seeds).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_loads_six_benchmarks() {
        let wb = Workbench::load();
        assert_eq!(wb.benchmarks.len(), 6);
        assert_eq!(wb.fabric.rows(), 45);
    }

    #[test]
    fn paper_reference_improvements_are_24_to_55_percent() {
        for (name, _, quale, qspr) in PAPER_TABLE2 {
            let imp = 100.0 * (quale as f64 - qspr as f64) / quale as f64;
            assert!((23.0..56.0).contains(&imp), "{name}: {imp}");
        }
    }
}
