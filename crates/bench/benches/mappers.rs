//! Criterion benches of end-to-end mapping (one full event-driven
//! simulation per iteration) for each benchmark circuit and policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qspr_bench::Workbench;
use qspr_fabric::TechParams;
use qspr_sim::{Mapper, MapperPolicy, Placement};

fn bench_mappers(c: &mut Criterion) {
    let wb = Workbench::load();
    let tech = TechParams::date2012();
    let mut group = c.benchmark_group("map");
    group.sample_size(20);
    for bench in &wb.benchmarks {
        let placement = Placement::center(&wb.fabric, bench.program.num_qubits());
        for (policy_name, policy) in [
            ("qspr", MapperPolicy::qspr(&tech)),
            ("quale", MapperPolicy::quale(&tech)),
            ("qpos", MapperPolicy::qpos(&tech)),
        ] {
            let mapper = Mapper::new(&wb.fabric, tech, policy);
            group.bench_with_input(
                BenchmarkId::new(policy_name, &bench.name),
                &bench.program,
                |b, program| {
                    b.iter(|| {
                        mapper
                            .map(program, &placement)
                            .expect("benchmarks map cleanly")
                            .latency()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
