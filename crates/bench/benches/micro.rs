//! Criterion micro-benches of the substrates: parsing, fabric
//! construction, routing (single query, batch, negotiation),
//! scheduling analysis, and encoder synthesis.

use criterion::{criterion_group, criterion_main, Criterion};

use qspr_fabric::{Coord, Fabric, TechParams};
use qspr_qasm::Program;
use qspr_qecc::codes;
use qspr_qecc::encoder::encoding_circuit;
use qspr_route::{ResourceState, RouteRequest, Router, RouterConfig, RouterKind};
use qspr_sched::Qidg;

/// Books a fabric-wide spread of routes so the routing benches below
/// run against a realistically loaded `ResourceState` (the mapper's
/// steady state), not a quiet fabric.
fn loaded_state(router: &Router<'_>, load: usize) -> ResourceState {
    let topo = router.topology();
    let mut state = ResourceState::new(topo);
    let order = topo.traps_by_distance(Coord::new(22, 42));
    let n = order.len();
    for i in 0..load {
        let (a, b) = (order[(i * 83) % n], order[(i * 83 + 40) % n]);
        if let Some(plan) = router.route(&state, a, b) {
            for usage in plan.resources() {
                state.book(usage.resource).unwrap();
            }
        }
    }
    state
}

/// Mid-distance mover pairs around the center, the shape of a
/// scheduling epoch's batch.
fn epoch_requests(topo: &qspr_fabric::Topology, n: usize) -> Vec<RouteRequest> {
    let order = topo.traps_by_distance(Coord::new(22, 42));
    (0..n)
        .map(|i| RouteRequest::new(order[2 * i], order[2 * i + 51]))
        .collect()
}

fn bench_micro(c: &mut Criterion) {
    let tech = TechParams::date2012();

    c.bench_function("qasm_parse_fig3", |b| {
        b.iter(|| Program::parse(codes::FIG3_QASM).expect("parses"))
    });

    c.bench_function("fabric_build_45x85", |b| b.iter(Fabric::quale_45x85));

    let fabric = Fabric::quale_45x85();
    let topo = fabric.topology();
    let router = Router::new(topo, RouterConfig::qspr(&tech));
    let state = ResourceState::new(topo);
    let order = topo.traps_by_distance(Coord::new(0, 0));
    let (from, to) = (order[0], *order.last().expect("traps exist"));
    c.bench_function("route_corner_to_corner", |b| {
        b.iter(|| router.route(&state, from, to).expect("routable"))
    });

    // The mapper's actual hot query: a mid-distance route on a loaded
    // fabric (every simulated instruction issues one or more of these).
    let loaded = loaded_state(&router, 10);
    let center_order = topo.traps_by_distance(Coord::new(22, 42));
    let (mid_from, mid_to) = (0..center_order.len() - 23)
        .map(|i| (center_order[i], center_order[i + 23]))
        .find(|&(a, b)| router.route(&loaded, a, b).is_some())
        .expect("some mid-distance pair routes under load");
    c.bench_function("route_one", |b| {
        b.iter(|| router.route(&loaded, mid_from, mid_to).expect("routable"))
    });

    // One epoch's mover batch through the greedy engine.
    let requests = epoch_requests(topo, 6);
    let mut greedy = RouterKind::Greedy.build(topo, RouterConfig::qspr(&tech));
    c.bench_function("route_batch", |b| {
        b.iter(|| greedy.route_batch(&loaded, &requests))
    });

    // A full negotiation epoch under capacity-1 contention: soft-price
    // routing, conflict scans and rip-up-and-reroute iterations. A
    // fresh engine per iteration keeps the workload steady-state —
    // reusing one would let its cross-epoch PathFinder history grow
    // and drift the measured work (construction cost is negligible
    // against the ~ms epoch).
    let contended = RouterConfig {
        channel_capacity: 1,
        junction_capacity: 1,
        ..RouterConfig::qspr(&tech)
    };
    let quiet = ResourceState::new(topo);
    c.bench_function("negotiate", |b| {
        b.iter(|| {
            let mut negotiated = RouterKind::Negotiated.build(topo, contended);
            negotiated.route_batch(&quiet, &requests)
        })
    });

    let golay = codes::twenty_three_one_seven();
    let program = encoding_circuit(&golay).expect("encodes");
    c.bench_function("qidg_build_golay", |b| {
        b.iter(|| Qidg::new(&program, &tech).critical_path_delay())
    });

    c.bench_function("encoder_synthesis_golay", |b| {
        b.iter(|| encoding_circuit(&golay).expect("encodes"))
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
