//! Criterion micro-benches of the substrates: parsing, fabric
//! construction, routing, scheduling analysis, and encoder synthesis.

use criterion::{criterion_group, criterion_main, Criterion};

use qspr_fabric::{Coord, Fabric, TechParams};
use qspr_qasm::Program;
use qspr_qecc::codes;
use qspr_qecc::encoder::encoding_circuit;
use qspr_route::{ResourceState, Router, RouterConfig};
use qspr_sched::Qidg;

fn bench_micro(c: &mut Criterion) {
    let tech = TechParams::date2012();

    c.bench_function("qasm_parse_fig3", |b| {
        b.iter(|| Program::parse(codes::FIG3_QASM).expect("parses"))
    });

    c.bench_function("fabric_build_45x85", |b| b.iter(Fabric::quale_45x85));

    let fabric = Fabric::quale_45x85();
    let topo = fabric.topology();
    let router = Router::new(topo, RouterConfig::qspr(&tech));
    let state = ResourceState::new(topo);
    let order = topo.traps_by_distance(Coord::new(0, 0));
    let (from, to) = (order[0], *order.last().expect("traps exist"));
    c.bench_function("route_corner_to_corner", |b| {
        b.iter(|| router.route(&state, from, to).expect("routable"))
    });

    let golay = codes::twenty_three_one_seven();
    let program = encoding_circuit(&golay).expect("encodes");
    c.bench_function("qidg_build_golay", |b| {
        b.iter(|| Qidg::new(&program, &tech).critical_path_delay())
    });

    c.bench_function("encoder_synthesis_golay", |b| {
        b.iter(|| encoding_circuit(&golay).expect("encodes"))
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
