//! Criterion benches of the placers (paper Table 1 machinery): MVFB
//! iterations vs Monte Carlo sampling at small, fixed budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qspr_bench::Workbench;
use qspr_fabric::TechParams;
use qspr_place::{MonteCarloPlacer, MvfbConfig, MvfbPlacer, Placer};
use qspr_sim::{Mapper, MapperPolicy};

fn bench_placers(c: &mut Criterion) {
    let wb = Workbench::quick(3);
    let tech = TechParams::date2012();
    let mapper = Mapper::new(&wb.fabric, tech, MapperPolicy::qspr(&tech));
    let mut group = c.benchmark_group("place");
    group.sample_size(10);
    for bench in &wb.benchmarks {
        group.bench_with_input(
            BenchmarkId::new("mvfb_m2", &bench.name),
            &bench.program,
            |b, program| {
                let placer = MvfbPlacer::new(MvfbConfig::new(2, 7));
                b.iter(|| placer.place(&mapper, program).expect("places").latency)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("monte_carlo_8", &bench.name),
            &bench.program,
            |b, program| {
                let placer = MonteCarloPlacer::new(8, 7);
                b.iter(|| placer.place(&mapper, program).expect("places").latency)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placers);
criterion_main!(benches);
