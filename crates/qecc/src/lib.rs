//! Stabilizer quantum error-correction substrate for the QSPR benchmarks.
//!
//! The paper evaluates QSPR on six *cyclic QECC encoding circuits*
//! (\[\[5,1,3\]\], \[\[7,1,3\]\], \[\[9,1,3\]\], \[\[14,8,3\]\], \[\[19,1,7\]\], \[\[23,1,7\]\])
//! taken from a now-defunct web page. This crate rebuilds that benchmark
//! set from first principles:
//!
//! * [`Pauli`] / [`PhasedPauli`] — n-qubit Pauli algebra (n ≤ 64) with
//!   symplectic commutation and phase-tracked multiplication;
//! * [`BitBasis`] — GF(2) linear algebra over symplectic bit-vectors;
//! * [`gf4`] — GF(4) and GF(2^m) field arithmetic, polynomial algebra
//!   and factorization of xⁿ−1 via cyclotomic cosets;
//! * [`CyclicCodeSearch`] — enumeration of GF(4) cyclic codes, Hermitian
//!   self-orthogonality testing, and the CRSS GF(4)→Pauli construction;
//! * [`StabilizerCode`] — commuting/independence validation, logical
//!   operator extraction (symplectic Gram–Schmidt), and exhaustive
//!   distance verification;
//! * [`encoder`] — Gottesman/Cleve standard-form encoding-circuit
//!   synthesis emitting [`qspr_qasm::Program`]s in the paper's gate set
//!   (`H`, `C-X`, `C-Y`, `C-Z`, …);
//! * [`StabilizerSim`] — an Aaronson–Gottesman tableau simulator used to
//!   *prove* each synthesized encoder maps |0…0⟩⊗|ψ⟩ into the code space;
//! * [`codes`] — the six named benchmark codes and
//!   [`codes::benchmark_suite`], the circuits every experiment consumes.
//!
//! # Examples
//!
//! ```
//! use qspr_qecc::codes;
//!
//! let five = codes::five_one_three();
//! assert_eq!((five.num_qubits(), five.num_logical()), (5, 1));
//! let circuit = qspr_qecc::encoder::encoding_circuit(&five).unwrap();
//! assert_eq!(circuit.num_qubits(), 5);
//! ```

pub mod codes;
pub mod css;
pub mod encoder;
pub mod gf4;

mod gf2;
mod pauli;
// Test-only: keeps `proptest` a dev-dependency and the module out of
// release builds entirely (the file's inner `#![cfg(test)]` alone would
// still parse it into non-test builds).
#[cfg(test)]
mod proptests;
mod stabilizer;
mod tableau;

pub use gf2::BitBasis;
pub use pauli::{Pauli, PauliKind, PhasedPauli};
pub use stabilizer::{CodeError, StabilizerCode};
pub use tableau::{StabilizerSim, UnsupportedGate};

pub use gf4::cyclic::CyclicCodeSearch;
