//! Property-based tests of the algebraic substrates.

#![cfg(test)]

use proptest::prelude::*;

use crate::gf4::{Gf4, Poly};
use crate::pauli::{Pauli, PhasedPauli};

fn arb_gf4() -> impl Strategy<Value = Gf4> {
    (0u8..4).prop_map(Gf4::from_bits)
}

fn arb_poly(max_deg: usize) -> impl Strategy<Value = Poly> {
    proptest::collection::vec(arb_gf4(), 0..=max_deg + 1).prop_map(Poly::from_coeffs)
}

fn arb_pauli(n: usize) -> impl Strategy<Value = Pauli> {
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (any::<u64>(), any::<u64>()).prop_map(move |(x, z)| Pauli::from_masks(n, x & mask, z & mask))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn poly_multiplication_is_commutative_and_associative(
        a in arb_poly(6),
        b in arb_poly(6),
        c in arb_poly(6),
    ) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn poly_distributes_over_addition(
        a in arb_poly(6),
        b in arb_poly(6),
        c in arb_poly(6),
    ) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn poly_division_round_trips(a in arb_poly(8), b in arb_poly(4)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a.clone());
        if !r.is_zero() {
            prop_assert!(r.degree() < b.degree());
        }
    }

    #[test]
    fn poly_conjugation_is_a_ring_homomorphism(a in arb_poly(6), b in arb_poly(6)) {
        prop_assert_eq!(a.conj().mul(&b.conj()), a.mul(&b).conj());
        prop_assert_eq!(a.conj().conj(), a.clone());
    }

    #[test]
    fn pauli_symplectic_round_trips(p in arb_pauli(17)) {
        prop_assert_eq!(Pauli::from_symplectic(17, p.symplectic()), p);
    }

    #[test]
    fn pauli_commutation_is_symmetric(a in arb_pauli(11), b in arb_pauli(11)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        prop_assert!(a.commutes_with(&a), "every Pauli commutes with itself");
    }

    #[test]
    fn phased_products_commute_up_to_the_symplectic_sign(
        a in arb_pauli(9),
        b in arb_pauli(9),
    ) {
        let pa = PhasedPauli::new(a);
        let pb = PhasedPauli::new(b);
        let ab = pa.mul(&pb);
        let ba = pb.mul(&pa);
        prop_assert_eq!(ab.pauli(), ba.pauli());
        if a.commutes_with(&b) {
            prop_assert_eq!(ab.phase(), ba.phase());
        } else {
            prop_assert_eq!((ab.phase() + 2) % 4, ba.phase());
        }
    }

    #[test]
    fn phased_squares_are_scalar(a in arb_pauli(9)) {
        // P² = ±I for any Pauli with a real phase convention.
        let p = PhasedPauli::new(a);
        let sq = p.mul(&p);
        prop_assert!(sq.pauli().is_identity());
        prop_assert_eq!(sq.phase() % 2, 0);
    }

    #[test]
    fn permutations_preserve_weight_and_commutation(
        a in arb_pauli(8),
        b in arb_pauli(8),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut perm: Vec<usize> = (0..8).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let pa = a.permuted(&perm);
        let pb = b.permuted(&perm);
        prop_assert_eq!(pa.weight(), a.weight());
        prop_assert_eq!(pa.commutes_with(&pb), a.commutes_with(&b));
    }
}
