//! CSS codes from dual-containing binary codes, and the quantum Hamming
//! family — workloads beyond the paper's six, used by the scaling
//! experiments.

use crate::pauli::Pauli;
use crate::stabilizer::{CodeError, StabilizerCode};

/// Builds the CSS stabilizer code of a *dual-containing* binary code
/// given by parity-check rows: every row becomes one X-type and one
/// Z-type generator.
///
/// # Errors
///
/// Returns [`CodeError::NonCommuting`] when the rows are not
/// self-orthogonal (the code is not dual-containing) and
/// [`CodeError::Dependent`] on redundant rows.
///
/// # Examples
///
/// ```
/// // The Steane code from the [7,4] Hamming parity check.
/// let h = [0b1110100u64, 0b0111010, 0b1101001];
/// let code = qspr_qecc::css::css_code("[[7,1,3]]", 7, &h).unwrap();
/// assert_eq!(code.num_logical(), 1);
/// assert_eq!(code.min_distance_up_to(3), Some(3));
/// ```
pub fn css_code(name: &str, n: usize, h_rows: &[u64]) -> Result<StabilizerCode, CodeError> {
    let mut generators = Vec::with_capacity(2 * h_rows.len());
    for &row in h_rows {
        generators.push(Pauli::from_masks(n, row, 0)); // X-type
    }
    for &row in h_rows {
        generators.push(Pauli::from_masks(n, 0, row)); // Z-type
    }
    StabilizerCode::from_paulis(name, generators)
}

/// The parity-check matrix of the binary Hamming code of order `r`:
/// `r` rows over `n = 2^r − 1` columns, column `j` (1-based) being the
/// binary representation of `j`.
///
/// # Panics
///
/// Panics unless `3 ≤ r ≤ 6` (n must stay within 64 qubits).
pub fn hamming_parity_check(r: u32) -> (usize, Vec<u64>) {
    assert!((3..=6).contains(&r), "supported orders are 3..=6");
    let n = (1usize << r) - 1;
    let rows = (0..r)
        .map(|bit| {
            let mut row = 0u64;
            for col in 1..=n {
                if (col >> bit) & 1 == 1 {
                    row |= 1 << (col - 1);
                }
            }
            row
        })
        .collect();
    (n, rows)
}

/// The quantum Hamming family `[[2^r−1, 2^r−1−2r, 3]]`: CSS codes of the
/// binary Hamming codes, which contain their simplex duals for `r ≥ 3`.
/// `r = 3` is the Steane code; `r = 4` gives \[\[15,7,3\]\]; `r = 5` gives
/// \[\[31,21,3\]\].
///
/// # Panics
///
/// Panics unless `3 ≤ r ≤ 6`.
///
/// # Examples
///
/// ```
/// let code = qspr_qecc::css::quantum_hamming(4);
/// assert_eq!(code.num_qubits(), 15);
/// assert_eq!(code.num_logical(), 7);
/// ```
pub fn quantum_hamming(r: u32) -> StabilizerCode {
    let (n, rows) = hamming_parity_check(r);
    let k = n - 2 * r as usize;
    let name = format!("[[{n},{k},3]]");
    css_code(&name, n, &rows)
        .expect("Hamming codes are dual-containing for r >= 3")
        .with_claimed_distance(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encoding_circuit;
    use crate::tableau::StabilizerSim;

    #[test]
    fn hamming_parity_checks_have_distinct_nonzero_columns() {
        for r in 3..=6 {
            let (n, rows) = hamming_parity_check(r);
            let mut cols = Vec::new();
            for c in 0..n {
                let mut v = 0u32;
                for (b, row) in rows.iter().enumerate() {
                    if (row >> c) & 1 == 1 {
                        v |= 1 << b;
                    }
                }
                assert_ne!(v, 0, "r={r} col {c}");
                cols.push(v);
            }
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), n, "r={r}: columns must be distinct");
        }
    }

    #[test]
    fn family_parameters() {
        for (r, n, k) in [(3u32, 7usize, 1usize), (4, 15, 7), (5, 31, 21)] {
            let code = quantum_hamming(r);
            assert_eq!(code.num_qubits(), n, "r={r}");
            assert_eq!(code.num_logical(), k, "r={r}");
        }
    }

    #[test]
    fn family_distance_is_three() {
        for r in [3u32, 4, 5] {
            let code = quantum_hamming(r);
            assert_eq!(code.min_distance_up_to(3), Some(3), "r={r}");
        }
    }

    #[test]
    fn r3_matches_steane_parameters() {
        let hamming = quantum_hamming(3);
        let steane = crate::codes::steane();
        assert_eq!(hamming.num_qubits(), steane.num_qubits());
        assert_eq!(hamming.num_logical(), steane.num_logical());
    }

    #[test]
    fn family_encoders_verify() {
        for r in [3u32, 4, 5] {
            let code = quantum_hamming(r);
            let program = encoding_circuit(&code).expect("encodes");
            let mut sim = StabilizerSim::new(code.num_qubits());
            sim.run(&program).unwrap();
            for s in code.stabilizers() {
                assert_eq!(sim.stabilizes(s), Some(true), "r={r}: {s}");
            }
        }
    }

    #[test]
    fn non_dual_containing_rows_are_rejected() {
        // Rows with odd pairwise overlap anticommute across X/Z copies.
        let err = css_code("bad", 4, &[0b0011, 0b0110]).unwrap_err();
        assert!(matches!(err, CodeError::NonCommuting(_, _)));
    }

    #[test]
    #[should_panic(expected = "supported orders")]
    fn order_out_of_range_panics() {
        let _ = hamming_parity_check(7);
    }
}
