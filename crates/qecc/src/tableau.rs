//! Aaronson–Gottesman stabilizer tableau simulation of Clifford
//! circuits, used to machine-check the synthesized encoding circuits.

use std::error::Error;
use std::fmt;

use qspr_qasm::{Gate, Operands, Program};

use crate::gf2::BitBasis;
use crate::pauli::{Pauli, PhasedPauli};

/// A gate outside the Clifford set the tableau can simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedGate(pub Gate);

impl fmt::Display for UnsupportedGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate {} is not a simulable Clifford operation", self.0)
    }
}

impl Error for UnsupportedGate {}

/// One row of the tableau: a Pauli with a sign bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Row {
    x: u64,
    z: u64,
    sign: bool,
}

/// Stabilizer-state simulator for up to 64 qubits.
///
/// Tracks `2n` rows (destabilizers then stabilizers) in the
/// Aaronson–Gottesman representation; the circuit gates of the QSPR
/// benchmarks (`H`, `S`, `S†`, Paulis, `C-X`, `C-Y`, `C-Z`, `SWAP`) are
/// all supported.
///
/// # Examples
///
/// ```
/// use qspr_qasm::Program;
/// use qspr_qecc::StabilizerSim;
///
/// // A Bell pair: stabilized by +XX and +ZZ.
/// let p = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n").unwrap();
/// let mut sim = StabilizerSim::new(2);
/// sim.run(&p).unwrap();
/// assert_eq!(sim.stabilizes(&"XX".parse().unwrap()), Some(true));
/// assert_eq!(sim.stabilizes(&"ZZ".parse().unwrap()), Some(true));
/// assert_eq!(sim.stabilizes(&"YY".parse().unwrap()), Some(false)); // -YY
/// assert_eq!(sim.stabilizes(&"XZ".parse().unwrap()), None); // not in group
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerSim {
    n: usize,
    rows: Vec<Row>,
}

impl StabilizerSim {
    /// The state |0…0⟩ on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn new(n: usize) -> StabilizerSim {
        assert!((1..=64).contains(&n), "tableau supports 1..=64 qubits");
        let mut rows = Vec::with_capacity(2 * n);
        for i in 0..n {
            rows.push(Row {
                x: 1 << i,
                z: 0,
                sign: false,
            });
        }
        for i in 0..n {
            rows.push(Row {
                x: 0,
                z: 1 << i,
                sign: false,
            });
        }
        StabilizerSim { n, rows }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn h(&mut self, q: usize) {
        let m = 1u64 << q;
        for row in &mut self.rows {
            let x = row.x & m != 0;
            let z = row.z & m != 0;
            row.sign ^= x && z;
            if x != z {
                row.x ^= m;
                row.z ^= m;
            }
        }
    }

    fn s(&mut self, q: usize) {
        let m = 1u64 << q;
        for row in &mut self.rows {
            let x = row.x & m != 0;
            let z = row.z & m != 0;
            row.sign ^= x && z;
            if x {
                row.z ^= m;
            }
        }
    }

    fn cnot(&mut self, c: usize, t: usize) {
        let mc = 1u64 << c;
        let mt = 1u64 << t;
        for row in &mut self.rows {
            let xc = row.x & mc != 0;
            let zt = row.z & mt != 0;
            let xt = row.x & mt != 0;
            let zc = row.z & mc != 0;
            row.sign ^= xc && zt && (xt == zc);
            if xc {
                row.x ^= mt;
            }
            if zt {
                row.z ^= mc;
            }
        }
    }

    fn pauli_x(&mut self, q: usize) {
        let m = 1u64 << q;
        for row in &mut self.rows {
            row.sign ^= row.z & m != 0;
        }
    }

    fn pauli_z(&mut self, q: usize) {
        let m = 1u64 << q;
        for row in &mut self.rows {
            row.sign ^= row.x & m != 0;
        }
    }

    fn pauli_y(&mut self, q: usize) {
        let m = 1u64 << q;
        for row in &mut self.rows {
            row.sign ^= (row.x & m != 0) != (row.z & m != 0);
        }
    }

    fn sdg(&mut self, q: usize) {
        self.pauli_z(q);
        self.s(q);
    }

    /// Applies one gate.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedGate`] for non-Clifford or non-unitary gates
    /// (`T`, `T†`, preparation, measurement).
    ///
    /// # Panics
    ///
    /// Panics if an operand is out of range.
    pub fn apply(&mut self, gate: Gate, operands: &[usize]) -> Result<(), UnsupportedGate> {
        for &q in operands {
            assert!(q < self.n, "qubit {q} out of range");
        }
        match (gate, operands) {
            (Gate::H, [q]) => self.h(*q),
            (Gate::S, [q]) => self.s(*q),
            (Gate::Sdg, [q]) => self.sdg(*q),
            (Gate::X, [q]) => self.pauli_x(*q),
            (Gate::Y, [q]) => self.pauli_y(*q),
            (Gate::Z, [q]) => self.pauli_z(*q),
            (Gate::CX, [c, t]) => self.cnot(*c, *t),
            (Gate::CZ, [c, t]) => {
                self.h(*t);
                self.cnot(*c, *t);
                self.h(*t);
            }
            (Gate::CY, [c, t]) => {
                self.sdg(*t);
                self.cnot(*c, *t);
                self.s(*t);
            }
            (Gate::Swap, [a, b]) => {
                self.cnot(*a, *b);
                self.cnot(*b, *a);
                self.cnot(*a, *b);
            }
            (g, _) => return Err(UnsupportedGate(g)),
        }
        Ok(())
    }

    /// Runs every instruction of a program (which must use this
    /// simulator's qubit count).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedGate`] on the first non-Clifford gate.
    ///
    /// # Panics
    ///
    /// Panics if the program declares a different number of qubits.
    pub fn run(&mut self, program: &Program) -> Result<(), UnsupportedGate> {
        assert_eq!(
            program.num_qubits(),
            self.n,
            "program and simulator disagree on qubit count"
        );
        for instr in program.instructions() {
            match instr.operands {
                Operands::One(q) => self.apply(instr.gate, &[q.index()])?,
                Operands::Two { control, target } => {
                    self.apply(instr.gate, &[control.index(), target.index()])?
                }
            }
        }
        Ok(())
    }

    /// The current stabilizer generators, with signs.
    pub fn stabilizer_generators(&self) -> Vec<PhasedPauli> {
        self.rows[self.n..]
            .iter()
            .map(|row| {
                PhasedPauli::new(Pauli::from_masks(self.n, row.x, row.z)).times_i(if row.sign {
                    2
                } else {
                    0
                })
            })
            .collect()
    }

    /// Whether `p` stabilizes the current state:
    ///
    /// * `Some(true)` — `+p` is in the stabilizer group;
    /// * `Some(false)` — `−p` is in the group;
    /// * `None` — neither (measuring `p` would be random).
    pub fn stabilizes(&self, p: &Pauli) -> Option<bool> {
        assert_eq!(p.num_qubits(), self.n, "operator size mismatch");
        let gens = self.stabilizer_generators();
        let mut basis = BitBasis::new(2 * self.n);
        for g in &gens {
            basis.insert(g.pauli().symplectic());
        }
        let (residue, combo) = basis.reduce(p.symplectic());
        if residue != 0 {
            return None;
        }
        // Multiply out the combination to recover the exact sign.
        let mut acc = PhasedPauli::new(Pauli::identity(self.n));
        for (i, g) in gens.iter().enumerate() {
            if (combo >> i) & 1 == 1 {
                acc = acc.mul(g);
            }
        }
        debug_assert_eq!(acc.pauli(), p);
        match acc.phase() {
            0 => Some(true),
            2 => Some(false),
            _ => unreachable!("commuting Hermitian products are ±1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli(s: &str) -> Pauli {
        s.parse().unwrap()
    }

    #[test]
    fn fresh_state_is_all_zeros() {
        let sim = StabilizerSim::new(3);
        assert_eq!(sim.stabilizes(&pauli("ZII")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("IZZ")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("XII")), None);
    }

    #[test]
    fn x_flips_a_qubit() {
        let mut sim = StabilizerSim::new(1);
        sim.apply(Gate::X, &[0]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("Z")), Some(false)); // -Z = |1>
    }

    #[test]
    fn hadamard_makes_plus() {
        let mut sim = StabilizerSim::new(1);
        sim.apply(Gate::H, &[0]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("X")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("Z")), None);
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        let mut sim = StabilizerSim::new(1);
        sim.apply(Gate::H, &[0]).unwrap();
        sim.apply(Gate::S, &[0]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("Y")), Some(true));
        // S† undoes it.
        sim.apply(Gate::Sdg, &[0]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("X")), Some(true));
    }

    #[test]
    fn ghz_state_stabilizers() {
        let p = Program::parse("QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X b,c\n").unwrap();
        let mut sim = StabilizerSim::new(3);
        sim.run(&p).unwrap();
        assert_eq!(sim.stabilizes(&pauli("XXX")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("ZZI")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("IZZ")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("ZIZ")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("ZZZ")), None);
    }

    #[test]
    fn cz_and_cy_match_their_definitions() {
        // CZ |++> stabilizers: XZ, ZX.
        let mut sim = StabilizerSim::new(2);
        sim.apply(Gate::H, &[0]).unwrap();
        sim.apply(Gate::H, &[1]).unwrap();
        sim.apply(Gate::CZ, &[0, 1]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("XZ")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("ZX")), Some(true));

        // CY with control |+>: stabilizers XY, ZI? |0>|0> + |1>(i|1>)...
        let mut sim = StabilizerSim::new(2);
        sim.apply(Gate::H, &[0]).unwrap();
        sim.apply(Gate::CY, &[0, 1]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("XY")), Some(true));
        assert_eq!(sim.stabilizes(&pauli("ZZ")), Some(true));
    }

    #[test]
    fn swap_exchanges_states() {
        let mut sim = StabilizerSim::new(2);
        sim.apply(Gate::X, &[0]).unwrap();
        sim.apply(Gate::Swap, &[0, 1]).unwrap();
        assert_eq!(sim.stabilizes(&pauli("ZI")), Some(true)); // q0 back to |0>
        assert_eq!(sim.stabilizes(&pauli("IZ")), Some(false)); // q1 is |1>
    }

    #[test]
    fn t_gate_is_unsupported() {
        let mut sim = StabilizerSim::new(1);
        assert_eq!(sim.apply(Gate::T, &[0]), Err(UnsupportedGate(Gate::T)));
    }

    #[test]
    fn five_code_encoder_fixture() {
        // The paper's Fig. 2/3 circuit maps |0000>|psi=0> into the
        // [[5,1,3]] code space -- checked against the cyclic stabilizers
        // XZZX-type up to the specific convention. Here we just verify
        // the run completes and yields a valid 5-qubit state.
        let p = Program::parse(
            "QUBIT q0,0\nQUBIT q1,0\nQUBIT q2,0\nQUBIT q3\nQUBIT q4,0\n\
             H q0\nH q1\nH q2\nH q4\n\
             C-X q3,q2\nC-Z q4,q2\nC-Y q2,q1\nC-Y q3,q1\nC-X q4,q1\n\
             C-Z q2,q0\nC-Y q3,q0\nC-Z q4,q0\n",
        )
        .unwrap();
        let mut sim = StabilizerSim::new(5);
        sim.run(&p).unwrap();
        assert_eq!(sim.stabilizer_generators().len(), 5);
    }
}
