//! The paper's six benchmark codes and their encoding circuits.
//!
//! The original circuits came from M. Grassl's "Cyclic QECC" page, which
//! is no longer reachable. Each code here is rebuilt from first
//! principles with the same `[[n, k, d]]` parameters (see DESIGN.md for
//! the substitution audit):
//!
//! | code | construction here |
//! |------|-------------------|
//! | \[\[5,1,3\]\] | GF(4)-linear cyclic (the perfect code); the paper's Fig. 2/3 circuit ships verbatim as [`fig3_program`] |
//! | \[\[7,1,3\]\] | GF(4)-linear cyclic (Steane, cyclic form) |
//! | \[\[9,1,3\]\] | GF(4)-*additive* cyclic (found by [`AdditiveCyclicSearch`](crate::gf4::AdditiveCyclicSearch)) |
//! | \[\[14,8,3\]\] | GF(4)-additive cyclic, shifts of one seed |
//! | \[\[19,1,7\]\] | GF(4)-additive cyclic, shifts of one seed; distance 7 verified exhaustively |
//! | \[\[23,1,7\]\] | GF(4)-linear cyclic (quantum Golay) |
//!
//! Every code's distance-3 bound is machine-checked in the normal test
//! suite; the full distance-7 verifications run as `--ignored` tests
//! (release mode recommended).

use qspr_qasm::Program;

use crate::encoder::encoding_circuit;
use crate::gf4::cyclic::CyclicCodeSearch;
use crate::pauli::Pauli;
use crate::stabilizer::StabilizerCode;

/// The perfect \[\[5,1,3\]\] code: cyclic shifts of `XZZXI`.
pub fn five_one_three() -> StabilizerCode {
    StabilizerCode::new("[[5,1,3]]", ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"])
        .expect("statically valid")
        .with_claimed_distance(3)
}

/// The Steane \[\[7,1,3\]\] code (CSS form of the cyclic Hamming code).
pub fn steane() -> StabilizerCode {
    StabilizerCode::new(
        "[[7,1,3]]",
        [
            "XXXXIII", "XXIIXXI", "XIXIXIX", "ZZZZIII", "ZZIIZZI", "ZIZIZIZ",
        ],
    )
    .expect("statically valid")
    .with_claimed_distance(3)
}

/// A \[\[9,1,3\]\] additive cyclic code: ZZ-pair shifts plus two X-type
/// rows, found by the additive cyclic search over x⁹−1 (the paper's
/// benchmark is cyclic; Shor's code is not).
pub fn nine_one_three() -> StabilizerCode {
    StabilizerCode::new(
        "[[9,1,3]]",
        [
            "ZIIZIIIII",
            "IZIIZIIII",
            "IIZIIZIII",
            "IIIZIIZII",
            "IIIIZIIZI",
            "IIIIIZIIZ",
            "XXIXXIXXI",
            "IXXIXXIXX",
        ],
    )
    .expect("statically valid")
    .with_claimed_distance(3)
}

/// A \[\[14,8,3\]\] additive cyclic code: six cyclic shifts of the seed
/// `ZXYXYXXIZXXIII` (output of the deterministic additive search,
/// distance 3 verified exhaustively).
pub fn fourteen_eight_three() -> StabilizerCode {
    StabilizerCode::from_paulis("[[14,8,3]]", shifts("ZXYXYXXIZXXIII", 6))
        .expect("statically valid")
        .with_claimed_distance(3)
}

/// A \[\[19,1,7\]\] additive cyclic code: eighteen cyclic shifts of the seed
/// `ZZIIXIIIXXIXXIIIXII` (distance 7 verified exhaustively in the
/// ignored test suite).
pub fn nineteen_one_seven() -> StabilizerCode {
    StabilizerCode::from_paulis("[[19,1,7]]", shifts("ZZIIXIIIXXIXXIIIXII", 18))
        .expect("statically valid")
        .with_claimed_distance(7)
}

/// The \[\[23,1,7\]\] quantum Golay code, from the GF(4)-linear cyclic
/// search over x²³−1.
pub fn twenty_three_one_seven() -> StabilizerCode {
    let search = CyclicCodeSearch::new(23).expect("23 is tabulated");
    search
        .find_code("[[23,1,7]]", 1)
        .expect("the Golay construction is self-orthogonal")
        .with_claimed_distance(7)
}

/// Cyclic rotations (by 0..count) of a seed Pauli string.
fn shifts(seed: &str, count: usize) -> Vec<Pauli> {
    let base: Pauli = seed.parse().expect("valid seed literal");
    let n = base.num_qubits();
    (0..count)
        .map(|s| {
            // Rotation by s: position i of the result holds position
            // (i - s) mod n of the seed.
            let perm: Vec<usize> = (0..n).map(|i| (i + n - s) % n).collect();
            base.permuted(&perm)
        })
        .collect()
}

/// The paper's Fig. 3: the QASM text of its \[\[5,1,3\]\] encoding circuit,
/// transcribed verbatim (the paper's numbering skips instruction 16).
pub const FIG3_QASM: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

/// The parsed Fig. 3 program.
pub fn fig3_program() -> Program {
    Program::parse(FIG3_QASM).expect("the paper's circuit parses")
}

/// One benchmark of the paper's evaluation: a named code and the QASM
/// encoding circuit the mapper consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// The paper's circuit name, e.g. `[[14,8,3]]`.
    pub name: String,
    /// The underlying stabilizer code.
    pub code: StabilizerCode,
    /// The encoding circuit (workload for the mapper).
    pub program: Program,
}

/// The paper's full benchmark set (Tables 1 and 2), in table order.
///
/// The \[\[5,1,3\]\] entry uses the paper's own Fig. 3 circuit verbatim; the
/// other five circuits are synthesized standard-form encoders, each
/// machine-verified against its code by stabilizer simulation.
///
/// # Panics
///
/// Panics only if encoder synthesis fails for a built-in code, which the
/// test suite rules out.
///
/// # Examples
///
/// ```
/// let suite = qspr_qecc::codes::benchmark_suite();
/// assert_eq!(suite.len(), 6);
/// assert_eq!(suite[0].name, "[[5,1,3]]");
/// assert_eq!(suite[5].program.num_qubits(), 23);
/// ```
pub fn benchmark_suite() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(6);
    out.push(Benchmark {
        name: "[[5,1,3]]".to_owned(),
        code: five_one_three(),
        program: fig3_program(),
    });
    for code in [
        steane(),
        nine_one_three(),
        fourteen_eight_three(),
        nineteen_one_seven(),
        twenty_three_one_seven(),
    ] {
        let program = encoding_circuit(&code).expect("built-in codes encode");
        out.push(Benchmark {
            name: code.name().to_owned(),
            code,
            program,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tableau::StabilizerSim;

    #[test]
    fn parameters_match_the_paper() {
        let expect = [
            ("[[5,1,3]]", 5, 1),
            ("[[7,1,3]]", 7, 1),
            ("[[9,1,3]]", 9, 1),
            ("[[14,8,3]]", 14, 8),
            ("[[19,1,7]]", 19, 1),
            ("[[23,1,7]]", 23, 1),
        ];
        for (bench, (name, n, k)) in benchmark_suite().iter().zip(expect) {
            assert_eq!(bench.name, name);
            assert_eq!(bench.code.num_qubits(), n, "{name}");
            assert_eq!(bench.code.num_logical(), k, "{name}");
            assert_eq!(bench.program.num_qubits(), n, "{name}");
        }
    }

    #[test]
    fn all_codes_have_distance_at_least_3() {
        for code in [
            five_one_three(),
            steane(),
            nine_one_three(),
            fourteen_eight_three(),
            nineteen_one_seven(),
            twenty_three_one_seven(),
        ] {
            assert!(code.verify_distance_at_least(3), "{}", code.name());
        }
    }

    #[test]
    fn small_codes_have_exact_distance_3() {
        for code in [five_one_three(), steane(), nine_one_three()] {
            assert_eq!(code.min_distance_up_to(3), Some(3), "{}", code.name());
        }
        assert_eq!(fourteen_eight_three().min_distance_up_to(3), Some(3));
    }

    #[test]
    fn distance_7_codes_have_no_light_logicals() {
        // Cheap prefix of the full distance check (weight ≤ 3).
        assert!(nineteen_one_seven().min_distance_up_to(3).is_none());
        assert!(twenty_three_one_seven().min_distance_up_to(3).is_none());
    }

    #[test]
    #[ignore = "exhaustive distance-7 scan; run with --release"]
    fn distance_7_codes_verified_exhaustively() {
        assert!(nineteen_one_seven().verify_distance_at_least(7));
        assert_eq!(nineteen_one_seven().min_distance_up_to(7), Some(7));
        assert!(twenty_three_one_seven().verify_distance_at_least(7));
        assert_eq!(twenty_three_one_seven().min_distance_up_to(7), Some(7));
    }

    #[test]
    fn synthesized_encoders_verify_against_their_codes() {
        for bench in benchmark_suite().iter().skip(1) {
            let mut sim = StabilizerSim::new(bench.code.num_qubits());
            sim.run(&bench.program).unwrap();
            for s in bench.code.stabilizers() {
                assert_eq!(sim.stabilizes(s), Some(true), "{}: {s}", bench.name);
            }
        }
    }

    #[test]
    fn fig3_matches_the_paper_text() {
        let p = fig3_program();
        assert_eq!(p.num_qubits(), 5);
        assert_eq!(p.one_qubit_gate_count(), 4);
        assert_eq!(p.two_qubit_gate_count(), 8);
        // q3 is the data qubit (declared without an initial value).
        assert_eq!(p.qubits()[3].initial(), None);
    }

    #[test]
    fn shifts_produce_cyclic_rotations() {
        let s = shifts("XZI", 3);
        assert_eq!(s[0].to_string(), "XZI");
        assert_eq!(s[1].to_string(), "IXZ");
        assert_eq!(s[2].to_string(), "ZIX");
    }

    #[test]
    fn additive_search_still_finds_equivalent_codes() {
        // The hardcoded generators came from the additive search; the
        // search must keep producing a [[9,1,3]] with the same
        // parameters and verified distance (the exact first hit may
        // shift if the scan order evolves — parameters may not).
        let found = crate::gf4::AdditiveCyclicSearch::new(9)
            .unwrap()
            .find_code("[[9,1,3]]", 1, 3)
            .unwrap();
        assert_eq!(found.num_qubits(), 9);
        assert_eq!(found.num_logical(), 1);
        assert_eq!(found.min_distance_up_to(3), Some(3));
        // And the hardcoded code is itself cyclic: shifting every
        // generator by one position stays inside the group.
        let ours = nine_one_three();
        for g in ours.stabilizers() {
            let n = g.num_qubits();
            let perm: Vec<usize> = (0..n).map(|i| (i + n - 1) % n).collect();
            assert!(ours.in_stabilizer_group(&g.permuted(&perm)), "{g}");
        }
    }
}
