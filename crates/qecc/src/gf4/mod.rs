//! Finite-field arithmetic for the cyclic-code construction.
//!
//! * [`Gf4`] — the field GF(4) = {0, 1, ω, ω²} with ω² = ω + 1;
//! * [`Poly`] — polynomials over GF(4);
//! * [`BinaryField`] — GF(2^e) towers (e ≤ 22) with primitive
//!   generators, used to compute n-th roots of unity and minimal
//!   polynomials;
//! * [`factor_xn_minus_1`] — factorization of xⁿ−1 over GF(4) via
//!   4-cyclotomic cosets (repeated-root cases handled through the odd
//!   part);
//! * [`cyclic`] — enumeration of GF(4) cyclic codes, Hermitian
//!   self-orthogonality tests, and the CRSS GF(4)→Pauli stabilizer
//!   construction behind the paper's benchmark codes.

pub mod cyclic;

mod additive;

mod element;
mod factor;
mod field;
mod poly;

pub use additive::AdditiveCyclicSearch;
pub use element::Gf4;
pub use factor::{factor_xn_minus_1, Factorization};
pub use field::{splitting_field, BinaryField, FieldError};
pub use poly::Poly;
