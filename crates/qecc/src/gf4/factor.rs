//! Factorization of xⁿ−1 over GF(4) via 4-cyclotomic cosets.

use super::element::Gf4;
use super::field::{splitting_field, FieldError};
use super::poly::Poly;

/// The factorization of xⁿ−1 into monic irreducible polynomials over
/// GF(4), each with its multiplicity (repeated-root cases arise for even
/// `n`, e.g. x¹⁴−1 = (x⁷−1)²).
///
/// # Examples
///
/// ```
/// use qspr_qecc::gf4::factor_xn_minus_1;
///
/// // x⁵−1 over GF(4): (x−1) and two conjugate quadratics.
/// let f = factor_xn_minus_1(5)?;
/// let degrees: Vec<usize> = f.factors().iter()
///     .map(|(p, _)| p.degree().unwrap())
///     .collect();
/// assert_eq!(degrees, vec![1, 2, 2]);
/// # Ok::<(), qspr_qecc::gf4::FieldError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factorization {
    n: usize,
    factors: Vec<(Poly, usize)>,
}

impl Factorization {
    /// The modulus degree n (of xⁿ−1).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The irreducible factors with multiplicities, sorted by degree then
    /// coefficients (deterministic order).
    pub fn factors(&self) -> &[(Poly, usize)] {
        &self.factors
    }

    /// Enumerates every monic divisor of xⁿ−1 with the given degree.
    pub fn divisors_of_degree(&self, degree: usize) -> Vec<Poly> {
        let mut out = Vec::new();
        let mut exponents = vec![0usize; self.factors.len()];
        loop {
            // Compute the degree of the current exponent assignment.
            let deg: usize = exponents
                .iter()
                .zip(&self.factors)
                .map(|(e, (p, _))| e * p.degree().unwrap_or(0))
                .sum();
            if deg == degree {
                let mut prod = Poly::one();
                for (e, (p, _)) in exponents.iter().zip(&self.factors) {
                    for _ in 0..*e {
                        prod = prod.mul(p);
                    }
                }
                out.push(prod);
            }
            // Mixed-radix increment.
            let mut i = 0;
            loop {
                if i == exponents.len() {
                    out.sort_by_key(|p| p.coeffs().iter().map(|c| c.bits()).collect::<Vec<_>>());
                    return out;
                }
                if exponents[i] < self.factors[i].1 {
                    exponents[i] += 1;
                    break;
                }
                exponents[i] = 0;
                i += 1;
            }
        }
    }
}

/// Factors xⁿ−1 over GF(4).
///
/// The odd part of `n` is factored through its 4-cyclotomic cosets and
/// minimal polynomials computed in the splitting field
/// [`splitting_field`]; a power-of-two part of `n` becomes factor
/// multiplicity (characteristic 2).
///
/// # Errors
///
/// Returns [`FieldError`] when the required splitting field is outside
/// the tabulated degrees (odd part with ord₂ beyond 22).
pub fn factor_xn_minus_1(n: usize) -> Result<Factorization, FieldError> {
    assert!(n >= 1, "degree must be positive");
    let mut odd = n;
    let mut multiplicity = 1usize;
    while odd % 2 == 0 {
        odd /= 2;
        multiplicity *= 2;
    }

    let mut factors: Vec<(Poly, usize)> = Vec::new();
    if odd == 1 {
        factors.push((Poly::from_coeffs(vec![Gf4::ONE, Gf4::ONE]), multiplicity));
    } else {
        let field = splitting_field(odd as u64)?;
        let beta = field.root_of_unity(odd as u64)?;
        let omega = field.omega();
        let omega_sq = field.mul(omega, omega);
        let to_gf4 = |v: u64| -> Gf4 {
            if v == 0 {
                Gf4::ZERO
            } else if v == 1 {
                Gf4::ONE
            } else if v == omega {
                Gf4::OMEGA
            } else if v == omega_sq {
                Gf4::OMEGA_SQ
            } else {
                unreachable!("minimal-polynomial coefficients lie in GF(4)")
            }
        };

        let mut seen = vec![false; odd];
        for s in 0..odd {
            if seen[s] {
                continue;
            }
            // 4-cyclotomic coset of s.
            let mut coset = Vec::new();
            let mut cur = s;
            while !seen[cur] {
                seen[cur] = true;
                coset.push(cur);
                cur = (cur * 4) % odd;
            }
            // Minimal polynomial Π (x − β^j) computed in the big field.
            let mut coeffs: Vec<u64> = vec![1]; // the constant polynomial 1
            for &j in &coset {
                let root = field.pow(beta, j as u64);
                // Multiply by (x + root).
                let mut next = vec![0u64; coeffs.len() + 1];
                for (i, &c) in coeffs.iter().enumerate() {
                    next[i + 1] ^= c;
                    next[i] ^= field.mul(c, root);
                }
                coeffs = next;
            }
            let poly = Poly::from_coeffs(coeffs.into_iter().map(to_gf4).collect());
            factors.push((poly, multiplicity));
        }
    }

    factors.sort_by_key(|(p, _)| {
        (
            p.degree().unwrap_or(0),
            p.coeffs().iter().map(|c| c.bits()).collect::<Vec<_>>(),
        )
    });
    Ok(Factorization { n, factors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product(f: &Factorization) -> Poly {
        let mut prod = Poly::one();
        for (p, mult) in f.factors() {
            for _ in 0..*mult {
                prod = prod.mul(p);
            }
        }
        prod
    }

    #[test]
    fn factors_multiply_back() {
        for n in [1usize, 3, 5, 7, 9, 14, 15, 19, 21, 23] {
            let f = factor_xn_minus_1(n).unwrap();
            assert_eq!(
                product(&f),
                Poly::x_pow_plus(n, Gf4::ONE),
                "x^{n} - 1 reconstruction"
            );
        }
    }

    #[test]
    fn coset_structure_matches_number_theory() {
        // n=7: ord_7(4)=3 -> factors of degree 1, 3, 3.
        let f = factor_xn_minus_1(7).unwrap();
        let mut degs: Vec<usize> = f
            .factors()
            .iter()
            .map(|(p, _)| p.degree().unwrap())
            .collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![1, 3, 3]);

        // n=9: cosets {0},{1,4,7},{2,8,5},{3},{6} -> degrees 1,1,1,3,3.
        let f = factor_xn_minus_1(9).unwrap();
        let mut degs: Vec<usize> = f
            .factors()
            .iter()
            .map(|(p, _)| p.degree().unwrap())
            .collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![1, 1, 1, 3, 3]);

        // n=23: ord_23(4)=11 -> degrees 1, 11, 11.
        let f = factor_xn_minus_1(23).unwrap();
        let mut degs: Vec<usize> = f
            .factors()
            .iter()
            .map(|(p, _)| p.degree().unwrap())
            .collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![1, 11, 11]);
    }

    #[test]
    fn even_n_has_multiplicities() {
        // x^14 - 1 = (x^7 - 1)^2.
        let f = factor_xn_minus_1(14).unwrap();
        for (_, mult) in f.factors() {
            assert_eq!(*mult, 2);
        }
        assert_eq!(product(&f), Poly::x_pow_plus(14, Gf4::ONE));
    }

    #[test]
    fn factors_are_monic_and_nontrivial() {
        for n in [5usize, 7, 9, 14, 19, 23] {
            let f = factor_xn_minus_1(n).unwrap();
            for (p, _) in f.factors() {
                assert!(p.is_monic());
                assert!(p.degree().unwrap() >= 1);
            }
        }
    }

    #[test]
    fn divisor_enumeration_covers_degrees() {
        let f = factor_xn_minus_1(5).unwrap();
        // Degree 3 divisors of x^5-1: (x-1)*q1 and (x-1)*q2.
        let d3 = f.divisors_of_degree(3);
        assert_eq!(d3.len(), 2);
        for d in &d3 {
            assert!(d.divides(&Poly::x_pow_plus(5, Gf4::ONE)));
        }
        // Degree 0: just 1.
        assert_eq!(f.divisors_of_degree(0), vec![Poly::one()]);
        // Degree 5: the modulus itself.
        assert_eq!(f.divisors_of_degree(5).len(), 1);
    }

    #[test]
    fn divisors_are_deterministic() {
        let f = factor_xn_minus_1(9).unwrap();
        assert_eq!(f.divisors_of_degree(5), f.divisors_of_degree(5));
    }
}
