//! The field GF(4).

use std::fmt;
use std::ops::{Add, Mul};

/// An element of GF(4) = {0, 1, ω, ω²}, with ω² = ω + 1 and ω³ = 1.
///
/// Encoded in two bits `a + bω`: `0 = 00`, `1 = 01`, `ω = 10`,
/// `ω² = 11`. Addition is XOR (characteristic 2).
///
/// # Examples
///
/// ```
/// use qspr_qecc::gf4::Gf4;
///
/// let w = Gf4::OMEGA;
/// assert_eq!(w * w, Gf4::OMEGA_SQ);
/// assert_eq!(w * w * w, Gf4::ONE);
/// assert_eq!(w + Gf4::ONE, Gf4::OMEGA_SQ);
/// assert_eq!(w.conj(), Gf4::OMEGA_SQ); // Frobenius x -> x²
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gf4(u8);

impl Gf4 {
    /// Additive identity.
    pub const ZERO: Gf4 = Gf4(0);
    /// Multiplicative identity.
    pub const ONE: Gf4 = Gf4(1);
    /// The primitive element ω.
    pub const OMEGA: Gf4 = Gf4(2);
    /// ω² = ω + 1.
    pub const OMEGA_SQ: Gf4 = Gf4(3);

    /// All four elements in order 0, 1, ω, ω².
    pub const ALL: [Gf4; 4] = [Gf4(0), Gf4(1), Gf4(2), Gf4(3)];

    /// Builds from the 2-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn from_bits(bits: u8) -> Gf4 {
        assert!(bits <= 3, "GF(4) elements are two bits");
        Gf4(bits)
    }

    /// The 2-bit encoding `a + bω` (bit 0 = a, bit 1 = b).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// `true` for the additive identity.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The Frobenius conjugate `x ↦ x²` (swaps ω and ω²).
    pub fn conj(self) -> Gf4 {
        match self.0 {
            2 => Gf4(3),
            3 => Gf4(2),
            b => Gf4(b),
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn inverse(self) -> Gf4 {
        match self.0 {
            0 => panic!("zero has no inverse"),
            1 => Gf4(1),
            2 => Gf4(3),
            _ => Gf4(2),
        }
    }

    /// The trace to GF(2): `tr(x) = x + x²` (0 for {0,1}, 1 for {ω,ω²}).
    pub fn trace(self) -> u8 {
        match self.0 {
            0 | 1 => 0,
            _ => 1,
        }
    }
}

impl Add for Gf4 {
    type Output = Gf4;

    // GF(4) has characteristic 2: addition genuinely is bitwise XOR.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf4) -> Gf4 {
        Gf4(self.0 ^ rhs.0)
    }
}

impl Mul for Gf4 {
    type Output = Gf4;

    fn mul(self, rhs: Gf4) -> Gf4 {
        let (a1, b1) = (self.0 & 1, self.0 >> 1);
        let (a2, b2) = (rhs.0 & 1, rhs.0 >> 1);
        // (a1 + b1ω)(a2 + b2ω) with ω² = 1 + ω.
        let a = (a1 & a2) ^ (b1 & b2);
        let b = (a1 & b2) ^ (b1 & a2) ^ (b1 & b2);
        Gf4(a | (b << 1))
    }
}

impl fmt::Display for Gf4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0 {
            0 => "0",
            1 => "1",
            2 => "w",
            _ => "w2",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf4::OMEGA + Gf4::OMEGA, Gf4::ZERO);
        assert_eq!(Gf4::ONE + Gf4::OMEGA, Gf4::OMEGA_SQ);
    }

    #[test]
    fn multiplication_table() {
        let (o, o2) = (Gf4::OMEGA, Gf4::OMEGA_SQ);
        assert_eq!(o * o, o2);
        assert_eq!(o * o2, Gf4::ONE);
        assert_eq!(o2 * o2, o);
        for x in Gf4::ALL {
            assert_eq!(x * Gf4::ZERO, Gf4::ZERO);
            assert_eq!(x * Gf4::ONE, x);
        }
    }

    #[test]
    fn field_axioms_exhaustive() {
        for a in Gf4::ALL {
            for b in Gf4::ALL {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                for c in Gf4::ALL {
                    assert_eq!(a * (b + c), a * b + a * c);
                    assert_eq!((a * b) * c, a * (b * c));
                }
            }
        }
    }

    #[test]
    fn inverses() {
        for x in [Gf4::ONE, Gf4::OMEGA, Gf4::OMEGA_SQ] {
            assert_eq!(x * x.inverse(), Gf4::ONE);
        }
    }

    #[test]
    fn conjugation_is_squaring() {
        for x in Gf4::ALL {
            assert_eq!(x.conj(), x * x);
            assert_eq!(x.conj().conj(), x);
        }
    }

    #[test]
    fn trace_values() {
        assert_eq!(Gf4::ZERO.trace(), 0);
        assert_eq!(Gf4::ONE.trace(), 0);
        assert_eq!(Gf4::OMEGA.trace(), 1);
        assert_eq!(Gf4::OMEGA_SQ.trace(), 1);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Gf4::ZERO.inverse();
    }
}
