//! GF(4) cyclic quantum codes: the CRSS construction behind the paper's
//! benchmark set.
//!
//! A GF(4)-linear cyclic code `C = ⟨g(x)⟩ ⊆ GF(4)ⁿ` that is *Hermitian
//! self-orthogonal* (`⟨u, v̄⟩ = 0` for all codewords) yields an
//! `[[n, n − 2·dim C]]` stabilizer code via the symbol map
//! `0↦I, 1↦X, ω↦Z, ω²↦Y`: the additive generators `{gᵢ, ωgᵢ}` over a
//! GF(4)-basis of `C` commute and become the stabilizer generators.

use crate::pauli::Pauli;
use crate::stabilizer::{CodeError, StabilizerCode};

use super::element::Gf4;
use super::factor::{factor_xn_minus_1, Factorization};
use super::field::FieldError;
use super::poly::Poly;

/// Search over the (finitely many) GF(4) cyclic codes of length `n`.
///
/// # Examples
///
/// ```
/// use qspr_qecc::CyclicCodeSearch;
///
/// let search = CyclicCodeSearch::new(5)?;
/// let code = search.find_code("[[5,1,3]]", 1).expect("the 5-qubit code is cyclic");
/// assert_eq!(code.num_qubits(), 5);
/// assert_eq!(code.num_logical(), 1);
/// assert!(code.verify_distance_at_least(3));
/// # Ok::<(), qspr_qecc::gf4::FieldError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicCodeSearch {
    n: usize,
    factorization: Factorization,
}

impl CyclicCodeSearch {
    /// Prepares the factorization of xⁿ−1 over GF(4).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError`] when the required splitting field exceeds
    /// the tabulated extension degrees.
    pub fn new(n: usize) -> Result<CyclicCodeSearch, FieldError> {
        Ok(CyclicCodeSearch {
            n,
            factorization: factor_xn_minus_1(n)?,
        })
    }

    /// Code length n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The underlying factorization.
    pub fn factorization(&self) -> &Factorization {
        &self.factorization
    }

    /// The GF(4)-basis of the cyclic code ⟨g⟩: the shifts `xⁱ·g(x)` for
    /// `i < n − deg g`, as coefficient vectors of length n.
    pub fn code_basis(&self, generator: &Poly) -> Vec<Vec<Gf4>> {
        let deg = generator.degree().expect("nonzero generator");
        let dim = self.n - deg;
        (0..dim)
            .map(|shift| {
                let mut row = vec![Gf4::ZERO; self.n];
                for (i, &c) in generator.coeffs().iter().enumerate() {
                    row[i + shift] = c;
                }
                row
            })
            .collect()
    }

    /// Tests Hermitian self-orthogonality of ⟨g⟩: `Σᵢ uᵢ·v̄ᵢ = 0` for all
    /// basis pairs (sufficient for all codeword pairs by linearity).
    pub fn is_hermitian_self_orthogonal(&self, generator: &Poly) -> bool {
        let basis = self.code_basis(generator);
        for u in &basis {
            for v in &basis {
                let mut acc = Gf4::ZERO;
                for (a, b) in u.iter().zip(v) {
                    acc = acc + *a * b.conj();
                }
                if !acc.is_zero() {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the `[[n, n − 2·dim]]` stabilizer code of a Hermitian
    /// self-orthogonal generator via the CRSS map.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] when the generator is not self-orthogonal
    /// (anticommuting rows) or produces dependent generators.
    pub fn stabilizer_code(
        &self,
        name: &str,
        generator: &Poly,
    ) -> Result<StabilizerCode, CodeError> {
        let basis = self.code_basis(generator);
        let mut paulis = Vec::with_capacity(2 * basis.len());
        for row in &basis {
            paulis.push(self.to_pauli(row));
            let scaled: Vec<Gf4> = row.iter().map(|&c| Gf4::OMEGA * c).collect();
            paulis.push(self.to_pauli(&scaled));
        }
        StabilizerCode::from_paulis(name, paulis)
    }

    /// The CRSS symbol map: 0↦I, 1↦X, ω↦Z, ω²↦Y (per coordinate).
    fn to_pauli(&self, word: &[Gf4]) -> Pauli {
        let mut x = 0u64;
        let mut z = 0u64;
        for (i, c) in word.iter().enumerate() {
            let bits = c.bits();
            // In the a+bω encoding: the `a` bit is the X part, the `b`
            // bit the Z part — matching 1↦X, ω↦Z, ω²↦Y.
            if bits & 1 == 1 {
                x |= 1 << i;
            }
            if bits & 2 == 2 {
                z |= 1 << i;
            }
        }
        Pauli::from_masks(self.n, x, z)
    }

    /// Every generator polynomial (monic divisor of xⁿ−1) whose cyclic
    /// code could produce an `[[n, k]]` quantum code, i.e. of degree
    /// `(n+k)/2`.
    pub fn candidates_for(&self, k: usize) -> Vec<Poly> {
        assert!(k <= self.n, "k cannot exceed n");
        if (self.n + k) % 2 != 0 {
            return Vec::new();
        }
        self.factorization.divisors_of_degree((self.n + k) / 2)
    }

    /// Finds the first Hermitian self-orthogonal cyclic `[[n, k]]` code,
    /// preferring candidates with no weight-≤2 logical operator (i.e.
    /// distance ≥ 3; the cheap part of distance verification).
    pub fn find_code(&self, name: &str, k: usize) -> Option<StabilizerCode> {
        let mut fallback = None;
        for g in self.candidates_for(k) {
            if !self.is_hermitian_self_orthogonal(&g) {
                continue;
            }
            let Ok(code) = self.stabilizer_code(name, &g) else {
                continue;
            };
            if code.verify_distance_at_least(3) {
                return Some(code);
            }
            if fallback.is_none() {
                fallback = Some(code);
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_qubit_cyclic_code_is_found() {
        let search = CyclicCodeSearch::new(5).unwrap();
        let code = search.find_code("[[5,1,3]]", 1).unwrap();
        assert_eq!(code.num_qubits(), 5);
        assert_eq!(code.num_logical(), 1);
        assert_eq!(code.min_distance_up_to(3), Some(3));
    }

    #[test]
    fn steane_parameters_from_cyclic_length_7() {
        let search = CyclicCodeSearch::new(7).unwrap();
        let code = search.find_code("[[7,1,3]]", 1).unwrap();
        assert_eq!(code.num_qubits(), 7);
        assert_eq!(code.num_logical(), 1);
        assert_eq!(code.min_distance_up_to(3), Some(3));
    }

    #[test]
    fn length_9_needs_additive_codes() {
        // No GF(4)-*linear* cyclic [[9,1,3]] exists — none of the degree-5
        // divisors of x⁹−1 is Hermitian self-orthogonal. The additive
        // search (`AdditiveCyclicSearch`) covers this length instead.
        let search = CyclicCodeSearch::new(9).unwrap();
        assert!(search.find_code("[[9,1,3]]", 1).is_none());
    }

    #[test]
    fn golay_length_23_code_is_found() {
        let search = CyclicCodeSearch::new(23).unwrap();
        let code = search.find_code("[[23,1,7]]", 1).unwrap();
        assert_eq!(code.num_qubits(), 23);
        assert_eq!(code.num_logical(), 1);
        assert!(code.verify_distance_at_least(3));
    }

    #[test]
    fn self_orthogonality_detects_bad_generators() {
        let search = CyclicCodeSearch::new(5).unwrap();
        // x^5-1 itself generates the zero code (trivially orthogonal);
        // the constant 1 generates the full space (never orthogonal).
        assert!(!search.is_hermitian_self_orthogonal(&Poly::one()));
    }

    #[test]
    fn basis_has_cyclic_shape() {
        let search = CyclicCodeSearch::new(5).unwrap();
        let g = search.candidates_for(1)[0].clone();
        let basis = search.code_basis(&g);
        assert_eq!(basis.len(), 2); // dim = (5-1)/2
                                    // Each row is the previous one shifted.
        assert_eq!(basis[0][0], g.coeff(0));
        assert_eq!(basis[1][1], g.coeff(0));
    }

    #[test]
    fn candidates_respect_parity() {
        let search = CyclicCodeSearch::new(5).unwrap();
        // n + k odd -> no candidates.
        assert!(search.candidates_for(2).is_empty());
        assert!(!search.candidates_for(1).is_empty());
    }
}
