//! GF(2^e) extension fields with primitive generators, used to find
//! n-th roots of unity when factoring xⁿ−1 over GF(4).

use std::error::Error;
use std::fmt;

/// Why a field request cannot be served.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FieldError {
    /// No primitive polynomial tabulated for this extension degree.
    UnsupportedDegree(u32),
    /// `n` has no n-th root of unity in any tabulated field
    /// (the needed extension degree exceeds the table).
    UnsupportedOrder(u64),
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::UnsupportedDegree(e) => {
                write!(f, "no primitive polynomial tabulated for GF(2^{e})")
            }
            FieldError::UnsupportedOrder(n) => {
                write!(f, "no tabulated field contains {n}-th roots of unity")
            }
        }
    }
}

impl Error for FieldError {}

/// Primitive polynomials over GF(2) for even extension degrees up to 22
/// (even degrees contain GF(4) as a subfield). Bit `i` is the
/// coefficient of `x^i`.
const PRIMITIVE_POLYS: &[(u32, u64)] = &[
    (2, 0b111),               // x² + x + 1
    (4, 0b1_0011),            // x⁴ + x + 1
    (6, 0b100_0011),          // x⁶ + x + 1
    (8, 0b1_0001_1101),       // x⁸ + x⁴ + x³ + x² + 1
    (10, 0b100_0000_1001),    // x¹⁰ + x³ + 1
    (12, 0b1_0000_0101_0011), // x¹² + x⁶ + x⁴ + x + 1
    (14, (1 << 14) | (1 << 10) | (1 << 6) | (1 << 1) | 1),
    (16, (1 << 16) | (1 << 12) | (1 << 3) | (1 << 1) | 1),
    (18, (1 << 18) | (1 << 7) | 1), // x¹⁸ + x⁷ + 1
    (20, (1 << 20) | (1 << 3) | 1), // x²⁰ + x³ + 1
    (22, (1 << 22) | (1 << 1) | 1), // x²² + x + 1
];

/// The field GF(2^e) with a tabulated primitive modulus; elements are
/// `u64` bit-polynomials of degree < e, and `x` (= `0b10`) generates the
/// multiplicative group.
///
/// # Examples
///
/// ```
/// use qspr_qecc::gf4::BinaryField;
///
/// let f = BinaryField::new(4)?;
/// // x has full multiplicative order 2⁴ − 1 = 15.
/// assert_eq!(f.pow(0b10, 15), 1);
/// assert_ne!(f.pow(0b10, 5), 1);
/// assert_ne!(f.pow(0b10, 3), 1);
/// # Ok::<(), qspr_qecc::gf4::FieldError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryField {
    e: u32,
    modulus: u64,
}

impl BinaryField {
    /// The field GF(2^e).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedDegree`] when `e` is not in the
    /// primitive-polynomial table (odd, zero, or > 22).
    pub fn new(e: u32) -> Result<BinaryField, FieldError> {
        let modulus = PRIMITIVE_POLYS
            .iter()
            .find(|(deg, _)| *deg == e)
            .map(|(_, m)| *m)
            .ok_or(FieldError::UnsupportedDegree(e))?;
        Ok(BinaryField { e, modulus })
    }

    /// Extension degree e.
    pub fn degree(&self) -> u32 {
        self.e
    }

    /// Field size 2^e.
    pub fn size(&self) -> u64 {
        1u64 << self.e
    }

    /// Order of the multiplicative group, 2^e − 1.
    pub fn group_order(&self) -> u64 {
        self.size() - 1
    }

    /// Sum (XOR in characteristic 2).
    pub fn add(&self, a: u64, b: u64) -> u64 {
        a ^ b
    }

    /// Product (carry-less multiply, then reduction by the modulus).
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.size() && b < self.size());
        let mut prod: u128 = 0;
        let mut aa = a as u128;
        let mut bb = b;
        while bb != 0 {
            if bb & 1 == 1 {
                prod ^= aa;
            }
            aa <<= 1;
            bb >>= 1;
        }
        // Reduce modulo the primitive polynomial.
        let e = self.e;
        let modulus = self.modulus as u128;
        for bitpos in (e..=(2 * e)).rev() {
            if (prod >> bitpos) & 1 == 1 {
                prod ^= modulus << (bitpos - e);
            }
        }
        prod as u64
    }

    /// `a^k` by square-and-multiply.
    pub fn pow(&self, a: u64, mut k: u64) -> u64 {
        let mut base = a;
        let mut acc = 1u64;
        while k > 0 {
            if k & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            k >>= 1;
        }
        acc
    }

    /// The canonical primitive element `x`.
    pub fn generator(&self) -> u64 {
        0b10
    }

    /// A primitive `n`-th root of unity, when `n` divides 2^e − 1.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::UnsupportedOrder`] otherwise.
    pub fn root_of_unity(&self, n: u64) -> Result<u64, FieldError> {
        if n == 0 || self.group_order() % n != 0 {
            return Err(FieldError::UnsupportedOrder(n));
        }
        Ok(self.pow(self.generator(), self.group_order() / n))
    }

    /// The embedded GF(4) primitive element ω = g^((2^e−1)/3)
    /// (requires even e, guaranteed by the table).
    pub fn omega(&self) -> u64 {
        self.pow(self.generator(), self.group_order() / 3)
    }
}

/// The smallest tabulated field containing primitive `n`-th roots of
/// unity *and* GF(4): GF(2^e) with `e = lcm(ord_n(2), 2)`.
///
/// # Errors
///
/// Returns [`FieldError`] when `n` is even or the required degree
/// exceeds the table.
pub fn splitting_field(n: u64) -> Result<BinaryField, FieldError> {
    if n == 0 || n % 2 == 0 {
        return Err(FieldError::UnsupportedOrder(n));
    }
    if n == 1 {
        return BinaryField::new(2);
    }
    // Multiplicative order of 2 modulo n.
    let mut ord = 1u64;
    let mut pow = 2u64 % n;
    while pow != 1 {
        pow = (pow * 2) % n;
        ord += 1;
        if ord > 64 {
            return Err(FieldError::UnsupportedOrder(n));
        }
    }
    let e = if ord % 2 == 0 { ord } else { ord * 2 };
    BinaryField::new(e as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prime_factors(mut n: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut d = 2;
        while d * d <= n {
            if n % d == 0 {
                out.push(d);
                while n % d == 0 {
                    n /= d;
                }
            }
            d += 1;
        }
        if n > 1 {
            out.push(n);
        }
        out
    }

    #[test]
    fn tabulated_polynomials_are_primitive() {
        // x must have full order 2^e - 1 in every tabulated field.
        for &(e, _) in PRIMITIVE_POLYS {
            let f = BinaryField::new(e).unwrap();
            let order = f.group_order();
            assert_eq!(f.pow(f.generator(), order), 1, "degree {e}");
            for p in prime_factors(order) {
                assert_ne!(
                    f.pow(f.generator(), order / p),
                    1,
                    "degree {e}: x^((2^e-1)/{p}) = 1, polynomial not primitive"
                );
            }
        }
    }

    #[test]
    fn multiplication_is_field_like() {
        let f = BinaryField::new(6).unwrap();
        // Spot-check associativity and distributivity on a sample.
        let xs = [1u64, 2, 3, 7, 19, 33, 63];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for &c in &xs {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn omega_is_a_cube_root_of_one() {
        for e in [2u32, 4, 6, 18, 22] {
            let f = BinaryField::new(e).unwrap();
            let w = f.omega();
            assert_ne!(w, 1);
            assert_eq!(f.pow(w, 3), 1, "degree {e}");
        }
    }

    #[test]
    fn roots_of_unity_have_exact_order() {
        let cases = [(5u64, 4u32), (7, 6), (9, 6), (19, 18), (23, 22)];
        for (n, e) in cases {
            let f = splitting_field(n).unwrap();
            assert_eq!(f.degree(), e, "splitting field of {n}");
            let beta = f.root_of_unity(n).unwrap();
            assert_eq!(f.pow(beta, n), 1);
            for d in 1..n {
                if n % d == 0 {
                    assert_ne!(f.pow(beta, d), 1, "beta order divides {d} < {n}");
                }
            }
        }
    }

    #[test]
    fn unsupported_requests_error() {
        assert!(BinaryField::new(3).is_err());
        assert!(BinaryField::new(24).is_err());
        assert!(splitting_field(4).is_err());
        let f = BinaryField::new(4).unwrap();
        assert!(f.root_of_unity(7).is_err());
    }
}
