//! Polynomials over GF(4).

use std::fmt;

use super::element::Gf4;

/// A polynomial over GF(4), coefficients stored lowest-degree first and
/// kept normalized (no trailing zeros).
///
/// # Examples
///
/// ```
/// use qspr_qecc::gf4::{Gf4, Poly};
///
/// // (x + 1)(x + w) = x² + (1+w)x + w
/// let a = Poly::from_coeffs(vec![Gf4::ONE, Gf4::ONE]);
/// let b = Poly::from_coeffs(vec![Gf4::OMEGA, Gf4::ONE]);
/// let p = a.mul(&b);
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.coeff(1), Gf4::OMEGA_SQ);
/// assert!(p.rem(&a).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    coeffs: Vec<Gf4>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial 1.
    pub fn one() -> Poly {
        Poly {
            coeffs: vec![Gf4::ONE],
        }
    }

    /// The monomial `x`.
    pub fn x() -> Poly {
        Poly {
            coeffs: vec![Gf4::ZERO, Gf4::ONE],
        }
    }

    /// `xⁿ + c` — handy for cyclic moduli (over GF(4), `xⁿ − 1 = xⁿ + 1`).
    pub fn x_pow_plus(n: usize, c: Gf4) -> Poly {
        let mut coeffs = vec![Gf4::ZERO; n + 1];
        coeffs[0] = c;
        coeffs[n] = Gf4::ONE;
        Poly::from_coeffs(coeffs)
    }

    /// Builds from raw coefficients (lowest first); trailing zeros are
    /// trimmed.
    pub fn from_coeffs(mut coeffs: Vec<Gf4>) -> Poly {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Gf4 {
        self.coeffs.get(i).copied().unwrap_or(Gf4::ZERO)
    }

    /// The coefficients, lowest-degree first.
    pub fn coeffs(&self) -> &[Gf4] {
        &self.coeffs
    }

    /// Leading coefficient (`None` for zero).
    pub fn leading(&self) -> Option<Gf4> {
        self.coeffs.last().copied()
    }

    /// `true` when the leading coefficient is 1.
    pub fn is_monic(&self) -> bool {
        self.leading() == Some(Gf4::ONE)
    }

    /// Scales every coefficient to make the polynomial monic.
    ///
    /// # Panics
    ///
    /// Panics on the zero polynomial.
    pub fn to_monic(&self) -> Poly {
        let lead = self.leading().expect("zero polynomial has no leading");
        let inv = lead.inverse();
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * inv).collect())
    }

    /// Sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let len = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..len).map(|i| self.coeff(i) + other.coeff(i)).collect();
        Poly::from_coeffs(coeffs)
    }

    /// Product.
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf4::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] = coeffs[i + j] + a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }

    /// Quotient and remainder of division by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics when dividing by zero.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        let dd = divisor.degree().expect("division by zero polynomial");
        let lead_inv = divisor.leading().expect("nonzero").inverse();
        let mut rem = self.coeffs.clone();
        let mut quot = vec![Gf4::ZERO; self.coeffs.len().saturating_sub(dd)];
        while rem.len() > dd {
            let shift = rem.len() - 1 - dd;
            let factor = *rem.last().expect("nonempty") * lead_inv;
            if !factor.is_zero() {
                quot[shift] = factor;
                for (i, &c) in divisor.coeffs.iter().enumerate() {
                    rem[shift + i] = rem[shift + i] + factor * c;
                }
            }
            rem.pop();
            while rem.last().is_some_and(|c| c.is_zero()) {
                rem.pop();
            }
            if rem.len() <= dd {
                break;
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Remainder of division by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics when dividing by zero.
    pub fn rem(&self, divisor: &Poly) -> Poly {
        self.div_rem(divisor).1
    }

    /// `true` when `self` divides `other` exactly.
    pub fn divides(&self, other: &Poly) -> bool {
        !self.is_zero() && other.rem(self).is_zero()
    }

    /// The polynomial with Frobenius-conjugated coefficients.
    pub fn conj(&self) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|c| c.conj()).collect())
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            match (i, *c) {
                (0, c) => write!(f, "{c}")?,
                (1, Gf4::ONE) => write!(f, "x")?,
                (1, c) => write!(f, "{c}*x")?,
                (i, Gf4::ONE) => write!(f, "x^{i}")?,
                (i, c) => write!(f, "{c}*x^{i}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: &[u8]) -> Poly {
        Poly::from_coeffs(bits.iter().map(|&b| Gf4::from_bits(b)).collect())
    }

    #[test]
    fn normalization_trims_zeros() {
        let q = p(&[1, 0, 0]);
        assert_eq!(q.degree(), Some(0));
        assert!(Poly::from_coeffs(vec![Gf4::ZERO; 3]).is_zero());
    }

    #[test]
    fn add_cancels_in_char_2() {
        let a = p(&[1, 2, 3]);
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn mul_and_div_round_trip() {
        let a = p(&[1, 1, 2]); // 1 + x + wx²
        let b = p(&[3, 0, 1]); // w² + x²
        let prod = a.mul(&b);
        let (q, r) = prod.div_rem(&a);
        assert!(r.is_zero());
        assert_eq!(q, b);
        let (q, r) = prod.div_rem(&b);
        assert!(r.is_zero());
        assert_eq!(q, a);
    }

    #[test]
    fn rem_is_smaller_degree() {
        let a = p(&[1, 0, 0, 0, 1]); // 1 + x^4
        let b = p(&[1, 1]); // 1 + x
        let r = a.rem(&b);
        assert!(r.degree() < b.degree() || r.is_zero());
        // x^4 + 1 = (x+1)^4 over GF(2) ⊂ GF(4), so remainder is zero.
        assert!(r.is_zero());
    }

    #[test]
    fn divides_check() {
        let a = p(&[1, 1]);
        let b = p(&[1, 0, 1]); // (1+x)²
        assert!(a.divides(&b));
        assert!(!b.divides(&a));
    }

    #[test]
    fn monic_scaling() {
        let a = p(&[1, 0, 2]); // 1 + wx²
        let m = a.to_monic();
        assert!(m.is_monic());
        assert_eq!(m.coeff(0), Gf4::OMEGA_SQ); // 1/w = w²
    }

    #[test]
    fn x_pow_plus_builds_cyclic_modulus() {
        let m = Poly::x_pow_plus(5, Gf4::ONE);
        assert_eq!(m.degree(), Some(5));
        assert_eq!(m.coeff(0), Gf4::ONE);
        assert_eq!(m.coeff(5), Gf4::ONE);
    }

    #[test]
    fn display_reads_naturally() {
        let a = p(&[2, 0, 1]);
        assert_eq!(a.to_string(), "x^2 + w");
    }
}
