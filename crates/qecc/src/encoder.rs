//! Standard-form encoding-circuit synthesis (Gottesman/Cleve).
//!
//! Produces, for any \[\[n,k\]\] stabilizer code, a QASM encoding circuit in
//! the paper's gate set: `n−r` ancilla preparations, one `H` per X-type
//! stabilizer row, and a cascade of controlled Paulis (`C-X`, `C-Y`,
//! `C-Z`) — exactly the shape of the paper's Fig. 2 circuit for
//! \[\[5,1,3\]\].
//!
//! Every synthesized circuit is *machine-verified*: an
//! [Aaronson–Gottesman tableau](crate::StabilizerSim) executes it on
//! |0…0⟩ and checks the resulting state is stabilized (with the correct
//! signs) by all code stabilizers and all logical Z̄ operators, i.e. the
//! circuit really prepares the encoded |0…0⟩_L. A Pauli frame correction
//! is appended automatically when the raw circuit produces the right
//! stabilizer group with some wrong signs.

use std::error::Error;
use std::fmt;

use qspr_qasm::{Gate, Program, QubitId};

use crate::pauli::{Pauli, PauliKind};
use crate::stabilizer::StabilizerCode;
use crate::tableau::StabilizerSim;

/// Why encoder synthesis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// The synthesized circuit did not stabilize the target group — a
    /// synthesis bug surfaced by the tableau verification.
    Verification {
        /// Index of the first generator not stabilized (stabilizers
        /// first, then logical Z̄s).
        generator: usize,
    },
    /// Codes on more than 64 qubits are unsupported.
    TooManyQubits(usize),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Verification { generator } => {
                write!(
                    f,
                    "synthesized encoder fails to stabilize generator {generator}"
                )
            }
            EncodeError::TooManyQubits(n) => write!(f, "{n} qubits exceed the 64-qubit limit"),
        }
    }
}

impl Error for EncodeError {}

/// Internal: the standard form of a stabilizer matrix.
struct StandardForm {
    n: usize,
    /// X-rank (number of X-type rows).
    r: usize,
    /// Stabilizer rows (x, z) in permuted qubit space.
    rows: Vec<(u64, u64)>,
    /// Qubit permutation: position `p` holds original qubit `perm[p]`.
    perm: Vec<usize>,
}

fn bit(m: u64, i: usize) -> bool {
    (m >> i) & 1 == 1
}

impl StandardForm {
    fn compute(code: &StabilizerCode) -> StandardForm {
        let n = code.num_qubits();
        let mut rows: Vec<(u64, u64)> = code
            .stabilizers()
            .iter()
            .map(|p| (p.x_mask(), p.z_mask()))
            .collect();
        let s = rows.len();
        let mut perm: Vec<usize> = (0..n).collect();

        let swap_cols = |rows: &mut Vec<(u64, u64)>, perm: &mut Vec<usize>, a: usize, b: usize| {
            if a == b {
                return;
            }
            perm.swap(a, b);
            for (x, z) in rows.iter_mut() {
                let xa = bit(*x, a);
                let xb = bit(*x, b);
                if xa != xb {
                    *x ^= (1 << a) | (1 << b);
                }
                let za = bit(*z, a);
                let zb = bit(*z, b);
                if za != zb {
                    *z ^= (1 << a) | (1 << b);
                }
            }
        };

        // Phase 1: RREF of the X block, pivots moved to columns 0..r.
        let mut r = 0;
        // `r` advances right before `continue 'outer` restarts the scan,
        // so the in-flight `r..n` / `r..s` ranges are never stale.
        #[allow(clippy::mut_range_bound)]
        'outer: loop {
            for c in r..n {
                for i in r..s {
                    if bit(rows[i].0, c) {
                        rows.swap(i, r);
                        swap_cols(&mut rows, &mut perm, c, r);
                        let pivot_row = rows[r];
                        for (j, row) in rows.iter_mut().enumerate() {
                            if j != r && bit(row.0, r) {
                                row.0 ^= pivot_row.0;
                                row.1 ^= pivot_row.1;
                            }
                        }
                        r += 1;
                        continue 'outer;
                    }
                }
            }
            break;
        }

        // Phase 2: RREF of the lower block's Z part, pivots to columns
        // r..r+m (column swaps restricted to r..n keep the X identity).
        let mut m = 0;
        'lower: loop {
            let row_idx = r + m;
            if row_idx >= s {
                break;
            }
            for c in (r + m)..n {
                for i in row_idx..s {
                    if bit(rows[i].1, c) {
                        rows.swap(i, row_idx);
                        swap_cols(&mut rows, &mut perm, c, r + m);
                        let pivot_row = rows[row_idx];
                        for (j, row) in rows.iter_mut().enumerate() {
                            if j != row_idx && j >= r && bit(row.1, r + m) {
                                // Lower rows have no X part, so this only
                                // touches Z bits.
                                row.0 ^= pivot_row.0;
                                row.1 ^= pivot_row.1;
                            }
                        }
                        m += 1;
                        continue 'lower;
                    }
                }
            }
            break;
        }
        debug_assert_eq!(r + m, s, "independent stabilizers fill the lower block");

        // Cleanup: zero the upper rows' Z bits over the middle block
        // (C1 := 0) by multiplying with lower rows; this decouples the
        // logical-X formula.
        for i in 0..r {
            for t in 0..m {
                if bit(rows[i].1, r + t) {
                    let lower = rows[r + t];
                    rows[i].0 ^= lower.0;
                    rows[i].1 ^= lower.1;
                }
            }
        }

        StandardForm { n, r, rows, perm }
    }

    fn s_count(&self) -> usize {
        self.rows.len()
    }

    fn k(&self) -> usize {
        self.n - self.rows.len()
    }

    fn m(&self) -> usize {
        self.s_count() - self.r
    }

    /// Logical X̄ in permuted space (C1 = 0 form): x-part `(0 | Eᵀ | e_j)`,
    /// z-part `(C2 column j | 0 | 0)`.
    fn logical_x(&self, j: usize) -> (u64, u64) {
        let (r, m) = (self.r, self.m());
        let data = r + m + j;
        let mut x = 1u64 << data;
        let mut z = 0u64;
        for t in 0..m {
            // E[t][j] = lower row t, z bit at data column j.
            if bit(self.rows[r + t].1, r + m + j) {
                x |= 1 << (r + t);
            }
        }
        for i in 0..r {
            // C2[i][j] = upper row i, z bit at data column j.
            if bit(self.rows[i].1, r + m + j) {
                z |= 1 << i;
            }
        }
        (x, z)
    }

    /// Logical Z̄ in permuted space: z-part `(A2 column j | 0 | e_j)`.
    fn logical_z(&self, j: usize) -> (u64, u64) {
        let (r, m) = (self.r, self.m());
        let data = r + m + j;
        let mut z = 1u64 << data;
        for i in 0..r {
            // A2[i][j] = upper row i, x bit at data column j.
            if bit(self.rows[i].0, r + m + j) {
                z |= 1 << i;
            }
        }
        (0, z)
    }
}

/// Synthesizes an encoding circuit for `code` and verifies it with a
/// stabilizer simulation.
///
/// The returned program declares the `n−k` ancilla qubits with initial
/// value 0 and the `k` data qubits without an initial value (mirroring
/// the paper's Fig. 3), then applies one `H` per X-type stabilizer row
/// followed by cascades of `C-X`/`C-Y`/`C-Z` gates, and finally a Pauli
/// frame fix if the raw signs came out wrong.
///
/// # Errors
///
/// * [`EncodeError::TooManyQubits`] for n > 64;
/// * [`EncodeError::Verification`] if the synthesized circuit fails the
///   tableau check (would indicate a bug, not bad input).
///
/// # Examples
///
/// ```
/// use qspr_qecc::{codes, encoder};
///
/// let circuit = encoder::encoding_circuit(&codes::steane()).unwrap();
/// assert_eq!(circuit.num_qubits(), 7);
/// assert!(circuit.two_qubit_gate_count() > 0);
/// ```
pub fn encoding_circuit(code: &StabilizerCode) -> Result<Program, EncodeError> {
    let n = code.num_qubits();
    if n > 64 {
        return Err(EncodeError::TooManyQubits(n));
    }
    let sf = StandardForm::compute(code);
    let (r, m, k) = (sf.r, sf.m(), sf.k());
    let perm = sf.perm.clone();

    // Build the gate list in permuted space as (gate, control, target).
    let mut ops: Vec<(Gate, Option<usize>, usize)> = Vec::new();

    // H (and S for Y self-factors) on the X-type pivot qubits.
    for i in 0..r {
        ops.push((Gate::H, None, i));
        if bit(sf.rows[i].1, i) {
            ops.push((Gate::S, None, i));
        }
    }

    // Logical X̄ blocks: controlled from each data qubit.
    for j in 0..k {
        let (x, z) = sf.logical_x(j);
        let control = r + m + j;
        push_controlled(&mut ops, n, control, x, z);
    }

    // Stabilizer rows: controlled from each pivot qubit. The Z factors a
    // row carries on *higher-indexed pivot qubits* must not be emitted:
    // conjugation through the later pivots' own blocks recreates exactly
    // those factors (they would otherwise cancel into a stray Z string
    // and the circuit would prepare the wrong group).
    for i in 0..r {
        let (x, mut z) = sf.rows[i];
        for p in (i + 1)..r {
            z &= !(1u64 << p);
        }
        push_controlled(&mut ops, n, i, x, z);
    }

    // Materialize the program with original qubit labels.
    let data_original: Vec<usize> = (0..k).map(|j| perm[r + m + j]).collect();
    let mut program = Program::new();
    for q in 0..n {
        let is_data = data_original.contains(&q);
        let initial = if is_data { None } else { Some(0) };
        program
            .add_qubit_with_initial(&format!("q{q}"), initial)
            .expect("generated names are unique");
    }
    for (gate, control, target) in ops {
        let t = QubitId(perm[target] as u32);
        match control {
            None => program.apply1(gate, t).expect("valid 1q gate"),
            Some(c) => {
                let c = QubitId(perm[c] as u32);
                program.apply2(gate, c, t).expect("valid 2q gate");
            }
        }
    }

    // Targets the encoded |0...0_L> state must be stabilized by.
    let inv = inverse_permutation(&perm);
    let mut targets: Vec<Pauli> = code.stabilizers().to_vec();
    for j in 0..k {
        let (x, z) = sf.logical_z(j);
        let permuted = Pauli::from_masks(n, x, z);
        targets.push(permuted.permuted(&inv));
    }

    // Verify; fix the Pauli frame if only signs are off.
    let mut sim = StabilizerSim::new(n);
    sim.run(&program).expect("encoders are Clifford circuits");
    let mut wrong_sign = Vec::new();
    for (gi, g) in targets.iter().enumerate() {
        match sim.stabilizes(g) {
            Some(true) => {}
            Some(false) => wrong_sign.push(gi),
            None => return Err(EncodeError::Verification { generator: gi }),
        }
    }
    if !wrong_sign.is_empty() {
        let fix = pauli_frame_fix(n, &targets, &wrong_sign);
        for q in 0..n {
            match fix.kind(q) {
                PauliKind::I => {}
                PauliKind::X => program.apply1(Gate::X, QubitId(q as u32)).expect("valid"),
                PauliKind::Y => program.apply1(Gate::Y, QubitId(q as u32)).expect("valid"),
                PauliKind::Z => program.apply1(Gate::Z, QubitId(q as u32)).expect("valid"),
            }
        }
        let mut sim = StabilizerSim::new(n);
        sim.run(&program).expect("still Clifford");
        for (gi, g) in targets.iter().enumerate() {
            if sim.stabilizes(g) != Some(true) {
                return Err(EncodeError::Verification { generator: gi });
            }
        }
    }
    Ok(program)
}

/// Emits the controlled-Pauli cascade for row `(x, z)` from `control`,
/// skipping the control's own position.
fn push_controlled(
    ops: &mut Vec<(Gate, Option<usize>, usize)>,
    n: usize,
    control: usize,
    x: u64,
    z: u64,
) {
    for t in 0..n {
        if t == control {
            continue;
        }
        let gate = match (bit(x, t), bit(z, t)) {
            (false, false) => continue,
            (true, false) => Gate::CX,
            (true, true) => Gate::CY,
            (false, true) => Gate::CZ,
        };
        ops.push((gate, Some(control), t));
    }
}

fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0; perm.len()];
    for (p, &orig) in perm.iter().enumerate() {
        inv[orig] = p;
    }
    inv
}

/// A Pauli `F` with `symp(F, targets[i]) = 1` exactly for `i ∈ flip`.
/// Conjugating the final state by `F` flips precisely those signs.
fn pauli_frame_fix(n: usize, targets: &[Pauli], flip: &[usize]) -> Pauli {
    // Solve M q = b over GF(2), where row i of M is target i's swapped
    // symplectic vector and b is the flip indicator.
    let rows: Vec<u128> = targets
        .iter()
        .map(|g| (g.z_mask() as u128) | ((g.x_mask() as u128) << n))
        .collect();
    let b: Vec<bool> = (0..targets.len()).map(|i| flip.contains(&i)).collect();
    // Gaussian elimination with an augmented bit.
    let mut aug: Vec<(u128, bool)> = rows.into_iter().zip(b).collect();
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
    let mut rank = 0;
    for col in 0..(2 * n) {
        let Some(i) = (rank..aug.len()).find(|&i| (aug[i].0 >> col) & 1 == 1) else {
            continue;
        };
        aug.swap(rank, i);
        let (prow, pb) = aug[rank];
        for (j, row) in aug.iter_mut().enumerate() {
            if j != rank && (row.0 >> col) & 1 == 1 {
                row.0 ^= prow;
                row.1 ^= pb;
            }
        }
        pivots.push((rank, col));
        rank += 1;
    }
    let mut q = 0u128;
    for &(row, col) in &pivots {
        if aug[row].1 {
            q |= 1 << col;
        }
    }
    Pauli::from_symplectic(n, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify_code_encoder(code: &StabilizerCode) -> Program {
        let program = encoding_circuit(code).expect("synthesis succeeds");
        // Independent re-verification.
        let mut sim = StabilizerSim::new(code.num_qubits());
        sim.run(&program).unwrap();
        for s in code.stabilizers() {
            assert_eq!(sim.stabilizes(s), Some(true), "stabilizer {s}");
        }
        program
    }

    #[test]
    fn five_qubit_code_encoder_verifies() {
        let code = StabilizerCode::new("[[5,1,3]]", ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]).unwrap();
        let program = verify_code_encoder(&code);
        assert_eq!(program.num_qubits(), 5);
        // One data qubit declared without an initial value.
        assert_eq!(
            program
                .qubits()
                .iter()
                .filter(|d| d.initial().is_none())
                .count(),
            1
        );
    }

    #[test]
    fn steane_encoder_verifies() {
        let code = StabilizerCode::new(
            "[[7,1,3]]",
            [
                "XXXXIII", "XXIIXXI", "XIXIXIX", "ZZZZIII", "ZZIIZZI", "ZIZIZIZ",
            ],
        )
        .unwrap();
        let program = verify_code_encoder(&code);
        // CSS code: 3 X-type rows -> exactly 3 H gates.
        let h_count = program
            .instructions()
            .iter()
            .filter(|i| i.gate == Gate::H)
            .count();
        assert_eq!(h_count, 3);
    }

    #[test]
    fn shor_encoder_verifies() {
        let code = StabilizerCode::new(
            "[[9,1,3]]",
            [
                "ZZIIIIIII",
                "IZZIIIIII",
                "IIIZZIIII",
                "IIIIZZIII",
                "IIIIIIZZI",
                "IIIIIIIZZ",
                "XXXXXXIII",
                "IIIXXXXXX",
            ],
        )
        .unwrap();
        verify_code_encoder(&code);
    }

    #[test]
    fn bell_state_encoder() {
        // [[2,0]]: encoding the Bell state.
        let code = StabilizerCode::new("bell", ["XX", "ZZ"]).unwrap();
        let program = verify_code_encoder(&code);
        assert_eq!(program.num_qubits(), 2);
    }

    #[test]
    fn encoder_shape_matches_fig2() {
        // The paper's Fig. 2: n-k Hadamards + controlled-Pauli cascade.
        let code = StabilizerCode::new("[[5,1,3]]", ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]).unwrap();
        let program = encoding_circuit(&code).unwrap();
        let h = program
            .instructions()
            .iter()
            .filter(|i| i.gate == Gate::H)
            .count();
        assert_eq!(h, 4, "one H per X-type stabilizer row");
        assert!(program.two_qubit_gate_count() >= 8);
    }

    #[test]
    fn random_codes_encode_correctly() {
        // Build random small stabilizer codes by taking random commuting
        // subsets and verify the encoder on each.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2012);
        let mut built = 0;
        while built < 10 {
            let n = rng.gen_range(3..=8usize);
            let s = rng.gen_range(1..=n - 1);
            // Random Clifford-conjugated Z's: apply a random circuit to
            // the trivial code (guarantees commuting independent rows).
            let mut sim = StabilizerSim::new(n);
            for _ in 0..40 {
                match rng.gen_range(0..3) {
                    0 => sim.apply(Gate::H, &[rng.gen_range(0..n)]).unwrap(),
                    1 => sim.apply(Gate::S, &[rng.gen_range(0..n)]).unwrap(),
                    _ => {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n - 1);
                        if b >= a {
                            b += 1;
                        }
                        sim.apply(Gate::CX, &[a, b]).unwrap();
                    }
                }
            }
            let gens: Vec<Pauli> = sim
                .stabilizer_generators()
                .iter()
                .take(s)
                .map(|g| *g.pauli())
                .collect();
            let Ok(code) = StabilizerCode::from_paulis("random", gens) else {
                continue;
            };
            verify_code_encoder(&code);
            built += 1;
        }
    }
}
