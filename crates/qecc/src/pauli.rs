//! n-qubit Pauli operators (n ≤ 64) in symplectic representation.

use std::fmt;
use std::str::FromStr;

/// The single-qubit Pauli kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliKind {
    /// Identity.
    I,
    /// Bit flip.
    X,
    /// Bit+phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl PauliKind {
    /// The (x, z) symplectic bits of this kind.
    pub fn bits(self) -> (bool, bool) {
        match self {
            PauliKind::I => (false, false),
            PauliKind::X => (true, false),
            PauliKind::Y => (true, true),
            PauliKind::Z => (false, true),
        }
    }

    fn from_bits(x: bool, z: bool) -> PauliKind {
        match (x, z) {
            (false, false) => PauliKind::I,
            (true, false) => PauliKind::X,
            (true, true) => PauliKind::Y,
            (false, true) => PauliKind::Z,
        }
    }

    fn letter(self) -> char {
        match self {
            PauliKind::I => 'I',
            PauliKind::X => 'X',
            PauliKind::Y => 'Y',
            PauliKind::Z => 'Z',
        }
    }
}

/// A sign-free n-qubit Pauli operator, stored as x/z bit masks.
///
/// # Examples
///
/// ```
/// use qspr_qecc::Pauli;
///
/// let a: Pauli = "XZZXI".parse().unwrap();
/// let b: Pauli = "IXZZX".parse().unwrap();
/// assert_eq!(a.num_qubits(), 5);
/// assert_eq!(a.weight(), 4);
/// assert!(a.commutes_with(&b));
/// assert_eq!(a.to_string(), "XZZXI");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pauli {
    n: u8,
    x: u64,
    z: u64,
}

impl Pauli {
    /// The identity on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn identity(n: usize) -> Pauli {
        assert!((1..=64).contains(&n), "Pauli supports 1..=64 qubits");
        Pauli {
            n: n as u8,
            x: 0,
            z: 0,
        }
    }

    /// Builds a Pauli from raw x/z masks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or a mask has bits above `n`.
    pub fn from_masks(n: usize, x: u64, z: u64) -> Pauli {
        assert!((1..=64).contains(&n), "Pauli supports 1..=64 qubits");
        let valid = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert!(
            x & !valid == 0 && z & !valid == 0,
            "mask exceeds {n} qubits"
        );
        Pauli { n: n as u8, x, z }
    }

    /// Number of qubits the operator acts on.
    pub fn num_qubits(&self) -> usize {
        self.n as usize
    }

    /// The X bit mask.
    pub fn x_mask(&self) -> u64 {
        self.x
    }

    /// The Z bit mask.
    pub fn z_mask(&self) -> u64 {
        self.z
    }

    /// The single-qubit kind at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_qubits()`.
    pub fn kind(&self, i: usize) -> PauliKind {
        assert!(i < self.num_qubits(), "qubit {i} out of range");
        PauliKind::from_bits((self.x >> i) & 1 == 1, (self.z >> i) & 1 == 1)
    }

    /// Replaces the kind at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_qubits()`.
    pub fn set_kind(&mut self, i: usize, kind: PauliKind) {
        assert!(i < self.num_qubits(), "qubit {i} out of range");
        let (x, z) = kind.bits();
        self.x = (self.x & !(1 << i)) | ((x as u64) << i);
        self.z = (self.z & !(1 << i)) | ((z as u64) << i);
    }

    /// Number of non-identity positions.
    pub fn weight(&self) -> u32 {
        (self.x | self.z).count_ones()
    }

    /// `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.x == 0 && self.z == 0
    }

    /// Symplectic commutation: `true` when the operators commute.
    pub fn commutes_with(&self, other: &Pauli) -> bool {
        debug_assert_eq!(self.n, other.n);
        ((self.x & other.z).count_ones() + (self.z & other.x).count_ones()) % 2 == 0
    }

    /// The symplectic bit-vector: x bits in the low word, z bits shifted
    /// into the high half (column layout used by [`crate::BitBasis`]).
    pub fn symplectic(&self) -> u128 {
        (self.x as u128) | ((self.z as u128) << self.n)
    }

    /// Rebuilds a Pauli from [`Pauli::symplectic`] form.
    pub fn from_symplectic(n: usize, v: u128) -> Pauli {
        let mask = if n == 64 {
            u64::MAX as u128
        } else {
            (1u128 << n) - 1
        };
        Pauli::from_masks(n, (v & mask) as u64, ((v >> n) & mask) as u64)
    }

    /// Permutes the qubits: position `i` of the result is position
    /// `perm[i]` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permuted(&self, perm: &[usize]) -> Pauli {
        assert_eq!(perm.len(), self.num_qubits(), "permutation length");
        let mut out = Pauli::identity(self.num_qubits());
        for (i, &src) in perm.iter().enumerate() {
            out.set_kind(i, self.kind(src));
        }
        out
    }

    /// Iterates the per-qubit kinds.
    pub fn kinds(&self) -> impl Iterator<Item = PauliKind> + '_ {
        (0..self.num_qubits()).map(move |i| self.kind(i))
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in self.kinds() {
            write!(f, "{}", kind.letter())?;
        }
        Ok(())
    }
}

/// Error parsing a Pauli string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError(char);

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Pauli letter {:?}", self.0)
    }
}

impl std::error::Error for ParsePauliError {}

impl TryFrom<&str> for Pauli {
    type Error = ParsePauliError;

    fn try_from(s: &str) -> Result<Pauli, ParsePauliError> {
        s.parse()
    }
}

impl FromStr for Pauli {
    type Err = ParsePauliError;

    /// Parses strings like `"XZZXI"` (case-insensitive, `_`/space
    /// ignored).
    fn from_str(s: &str) -> Result<Pauli, ParsePauliError> {
        let letters: Vec<char> = s
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_')
            .collect();
        let mut p = Pauli::identity(letters.len().max(1));
        if letters.is_empty() {
            return Err(ParsePauliError(' '));
        }
        for (i, c) in letters.iter().enumerate() {
            let kind = match c.to_ascii_uppercase() {
                'I' => PauliKind::I,
                'X' => PauliKind::X,
                'Y' => PauliKind::Y,
                'Z' => PauliKind::Z,
                other => return Err(ParsePauliError(other)),
            };
            p.set_kind(i, kind);
        }
        Ok(p)
    }
}

/// A Pauli with a global phase `i^phase` (`phase` mod 4), closed under
/// multiplication — needed to verify stabilizer *signs*.
///
/// # Examples
///
/// ```
/// use qspr_qecc::PhasedPauli;
///
/// let x = PhasedPauli::from_str_plus("X").unwrap();
/// let z = PhasedPauli::from_str_plus("Z").unwrap();
/// let xz = x.mul(&z);
/// // XZ = -iY.
/// assert_eq!(xz.pauli().to_string(), "Y");
/// assert_eq!(xz.phase(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhasedPauli {
    pauli: Pauli,
    phase: u8,
}

impl PhasedPauli {
    /// Wraps a sign-free Pauli with phase `+1`.
    pub fn new(pauli: Pauli) -> PhasedPauli {
        PhasedPauli { pauli, phase: 0 }
    }

    /// Parses a Pauli string with phase `+1`.
    ///
    /// # Errors
    ///
    /// Returns an error for letters outside `IXYZ`.
    pub fn from_str_plus(s: &str) -> Result<PhasedPauli, ParsePauliError> {
        Ok(PhasedPauli::new(s.parse()?))
    }

    /// The sign-free part.
    pub fn pauli(&self) -> &Pauli {
        &self.pauli
    }

    /// The exponent of `i` in the global phase (0..4).
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// Multiplies by `i^k`.
    pub fn times_i(mut self, k: u8) -> PhasedPauli {
        self.phase = (self.phase + k) % 4;
        self
    }

    /// The product `self · other`, with exact phase.
    pub fn mul(&self, other: &PhasedPauli) -> PhasedPauli {
        debug_assert_eq!(self.pauli.n, other.pauli.n);
        let mut phase = u32::from(self.phase) + u32::from(other.phase);
        // Per-qubit phase contributions of single-Pauli products.
        for i in 0..self.pauli.num_qubits() {
            phase += kind_product_phase(self.pauli.kind(i), other.pauli.kind(i));
        }
        PhasedPauli {
            pauli: Pauli {
                n: self.pauli.n,
                x: self.pauli.x ^ other.pauli.x,
                z: self.pauli.z ^ other.pauli.z,
            },
            phase: (phase % 4) as u8,
        }
    }
}

/// Exponent of `i` in `a·b` for single-qubit Paulis (e.g. X·Z = −iY → 3).
fn kind_product_phase(a: PauliKind, b: PauliKind) -> u32 {
    use PauliKind::*;
    match (a, b) {
        (X, Y) | (Y, Z) | (Z, X) => 1,
        (Y, X) | (Z, Y) | (X, Z) => 3,
        _ => 0,
    }
}

impl fmt::Display for PhasedPauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.phase {
            0 => "+",
            1 => "+i",
            2 => "-",
            _ => "-i",
        };
        write!(f, "{prefix}{}", self.pauli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["XZZXI", "IIIII", "YYYY", "XIZ"] {
            let p: Pauli = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("XQZ".parse::<Pauli>().is_err());
    }

    #[test]
    fn weight_counts_non_identity() {
        let p: Pauli = "XIYZI".parse().unwrap();
        assert_eq!(p.weight(), 3);
        assert!(Pauli::identity(5).is_identity());
    }

    #[test]
    fn commutation_rules() {
        let x: Pauli = "X".parse().unwrap();
        let z: Pauli = "Z".parse().unwrap();
        let y: Pauli = "Y".parse().unwrap();
        assert!(!x.commutes_with(&z));
        assert!(!x.commutes_with(&y));
        assert!(x.commutes_with(&x));
        // XX vs ZZ: two anticommuting positions -> commute overall.
        let xx: Pauli = "XX".parse().unwrap();
        let zz: Pauli = "ZZ".parse().unwrap();
        assert!(xx.commutes_with(&zz));
    }

    #[test]
    fn five_qubit_code_stabilizers_commute() {
        let gens: Vec<Pauli> = ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        for a in &gens {
            for b in &gens {
                assert!(a.commutes_with(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn symplectic_round_trip() {
        let p: Pauli = "XYZI".parse().unwrap();
        let v = p.symplectic();
        assert_eq!(Pauli::from_symplectic(4, v), p);
    }

    #[test]
    fn permutation_moves_kinds() {
        let p: Pauli = "XYZ".parse().unwrap();
        let q = p.permuted(&[2, 0, 1]);
        assert_eq!(q.to_string(), "ZXY");
    }

    #[test]
    fn phased_multiplication_table() {
        let x = PhasedPauli::from_str_plus("X").unwrap();
        let y = PhasedPauli::from_str_plus("Y").unwrap();
        let z = PhasedPauli::from_str_plus("Z").unwrap();
        // XY = iZ
        let xy = x.mul(&y);
        assert_eq!((xy.pauli().to_string().as_str(), xy.phase()), ("Z", 1));
        // YX = -iZ
        let yx = y.mul(&x);
        assert_eq!((yx.pauli().to_string().as_str(), yx.phase()), ("Z", 3));
        // X·X = I
        let xx = x.mul(&x);
        assert_eq!((xx.pauli().is_identity(), xx.phase()), (true, 0));
        // ZX = iY
        let zx = z.mul(&x);
        assert_eq!((zx.pauli().to_string().as_str(), zx.phase()), ("Y", 1));
    }

    #[test]
    fn phased_multiplication_is_associative_on_samples() {
        let ops: Vec<PhasedPauli> = ["XZ", "YI", "ZZ", "XY", "IZ"]
            .iter()
            .map(|s| PhasedPauli::from_str_plus(s).unwrap())
            .collect();
        for a in &ops {
            for b in &ops {
                for c in &ops {
                    assert_eq!(a.mul(b).mul(c), a.mul(&b.mul(c)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_qubits_panics() {
        let _ = Pauli::identity(0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_mask_panics() {
        let _ = Pauli::from_masks(3, 0b1000, 0);
    }
}
