//! GF(2) linear algebra over bit-vectors of up to 128 columns.
//!
//! Symplectic representations of Paulis on n ≤ 64 qubits fit in a `u128`
//! (`x` bits low, `z` bits high), so a simple pivoted basis suffices for
//! rank, independence and membership queries.

/// An incremental GF(2) row basis with pivot bookkeeping.
///
/// Every inserted vector is reduced against the existing basis; the
/// *combination mask* records which previously inserted vectors
/// participate, so group-membership queries can report the exact product
/// of generators (used when verifying stabilizer signs).
///
/// # Examples
///
/// ```
/// use qspr_qecc::BitBasis;
///
/// let mut basis = BitBasis::new(4);
/// assert!(basis.insert(0b0011));
/// assert!(basis.insert(0b0110));
/// // 0b0101 = v0 ^ v1 is dependent; the combo mask names both.
/// assert!(!basis.insert(0b0101));
/// assert_eq!(basis.reduce(0b0101), (0, 0b11));
/// assert_eq!(basis.rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitBasis {
    cols: usize,
    /// (pivot column, reduced vector, combination over inserted vectors)
    rows: Vec<(u32, u128, u128)>,
    inserted: usize,
}

impl BitBasis {
    /// An empty basis over `cols` columns.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 128`.
    pub fn new(cols: usize) -> BitBasis {
        assert!(cols <= 128, "BitBasis supports at most 128 columns");
        BitBasis {
            cols,
            rows: Vec::new(),
            inserted: 0,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Number of vectors inserted so far (independent or not).
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Reduces `v` against the basis. Returns the residue and the mask of
    /// inserted-vector indices whose sum (XOR) plus the residue equals
    /// `v`. A zero residue means `v` is in the span.
    pub fn reduce(&self, mut v: u128) -> (u128, u128) {
        let mut combo = 0u128;
        for &(pivot, row, row_combo) in &self.rows {
            if (v >> pivot) & 1 == 1 {
                v ^= row;
                combo ^= row_combo;
            }
        }
        (v, combo)
    }

    /// Inserts `v`; returns `true` when it enlarged the span.
    ///
    /// # Panics
    ///
    /// Panics after 128 insertions (combination masks would overflow) —
    /// far beyond any stabilizer group used here.
    pub fn insert(&mut self, v: u128) -> bool {
        assert!(self.inserted < 128, "combination mask exhausted");
        let idx = self.inserted;
        self.inserted += 1;
        let (residue, combo) = self.reduce(v);
        if residue == 0 {
            return false;
        }
        let pivot = 127 - residue.leading_zeros();
        self.rows.push((pivot, residue, combo | (1u128 << idx)));
        // Keep rows sorted by descending pivot for canonical reduction.
        self.rows.sort_by_key(|row| std::cmp::Reverse(row.0));
        true
    }

    /// `true` when `v` lies in the span.
    pub fn contains(&self, v: u128) -> bool {
        self.reduce(v).0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_basis() {
        let b = BitBasis::new(8);
        assert_eq!(b.rank(), 0);
        assert!(b.contains(0));
        assert!(!b.contains(1));
    }

    #[test]
    fn insert_and_rank() {
        let mut b = BitBasis::new(8);
        assert!(b.insert(0b1000));
        assert!(b.insert(0b1100));
        assert!(!b.insert(0b0100)); // dependent on the first two
        assert_eq!(b.rank(), 2);
        assert_eq!(b.inserted(), 3);
    }

    #[test]
    fn combo_masks_name_the_generators() {
        let mut b = BitBasis::new(8);
        b.insert(0b0001);
        b.insert(0b0010);
        b.insert(0b0100);
        let (residue, combo) = b.reduce(0b0101);
        assert_eq!(residue, 0);
        assert_eq!(combo, 0b101); // vectors 0 and 2
    }

    #[test]
    fn full_width_vectors() {
        let mut b = BitBasis::new(128);
        assert!(b.insert(1u128 << 127));
        assert!(b.insert((1u128 << 127) | 1));
        assert!(b.contains(1));
    }

    #[test]
    #[should_panic(expected = "at most 128")]
    fn too_many_columns_panics() {
        let _ = BitBasis::new(129);
    }
}
