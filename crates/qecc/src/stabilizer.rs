//! Stabilizer codes: validation, logical operators, distance.

use std::error::Error;
use std::fmt;

use crate::gf2::BitBasis;
use crate::pauli::Pauli;

/// Why a stabilizer set does not define a code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// Generators `i` and `j` anticommute.
    NonCommuting(usize, usize),
    /// Generator `i` is a product of earlier generators (or identity).
    Dependent(usize),
    /// A generator acts on the wrong number of qubits.
    WrongQubitCount {
        /// Index of the offending generator.
        index: usize,
        /// Its qubit count.
        got: usize,
        /// The code's qubit count.
        expected: usize,
    },
    /// More independent generators than qubits.
    TooManyGenerators,
    /// A code needs at least one stabilizer generator.
    Empty,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::NonCommuting(i, j) => {
                write!(f, "stabilizer generators {i} and {j} anticommute")
            }
            CodeError::Dependent(i) => {
                write!(f, "stabilizer generator {i} is dependent")
            }
            CodeError::WrongQubitCount {
                index,
                got,
                expected,
            } => write!(
                f,
                "generator {index} acts on {got} qubits, expected {expected}"
            ),
            CodeError::TooManyGenerators => write!(f, "more generators than qubits"),
            CodeError::Empty => write!(f, "no stabilizer generators"),
        }
    }
}

impl Error for CodeError {}

/// An `[[n, k]]` stabilizer code: `n − k` independent commuting Pauli
/// generators plus derived logical operators.
///
/// # Examples
///
/// ```
/// use qspr_qecc::StabilizerCode;
///
/// // The perfect [[5,1,3]] code (cyclic shifts of XZZXI).
/// let code = StabilizerCode::new(
///     "[[5,1,3]]",
///     ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"],
/// )?;
/// assert_eq!(code.num_qubits(), 5);
/// assert_eq!(code.num_logical(), 1);
/// // Exhaustively verified: no logical operator of weight < 3.
/// assert_eq!(code.min_distance_up_to(3), Some(3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizerCode {
    name: String,
    n: usize,
    stabilizers: Vec<Pauli>,
    logical_x: Vec<Pauli>,
    logical_z: Vec<Pauli>,
    claimed_distance: Option<u32>,
}

impl StabilizerCode {
    /// Validates the generator set and derives logical operators.
    ///
    /// Generators may be given as Pauli strings (`"XZZXI"`) or [`Pauli`]
    /// values.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] when the set is empty, inconsistent in
    /// size, anticommuting, or dependent.
    ///
    /// # Panics
    ///
    /// Panics when a generator *string* fails to parse — generator
    /// literals are programmer input. Use [`StabilizerCode::from_paulis`]
    /// with pre-parsed values for untrusted input.
    pub fn new<I, P>(name: &str, generators: I) -> Result<StabilizerCode, CodeError>
    where
        I: IntoIterator<Item = P>,
        P: TryInto<Pauli>,
        <P as TryInto<Pauli>>::Error: fmt::Debug,
    {
        let stabilizers: Vec<Pauli> = generators
            .into_iter()
            .map(|p| p.try_into().expect("caller supplies valid Pauli strings"))
            .collect();
        Self::from_paulis(name, stabilizers)
    }

    /// Validates an explicit Pauli generator list.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StabilizerCode::new`].
    pub fn from_paulis(name: &str, stabilizers: Vec<Pauli>) -> Result<StabilizerCode, CodeError> {
        let first = stabilizers.first().ok_or(CodeError::Empty)?;
        let n = first.num_qubits();
        for (i, s) in stabilizers.iter().enumerate() {
            if s.num_qubits() != n {
                return Err(CodeError::WrongQubitCount {
                    index: i,
                    got: s.num_qubits(),
                    expected: n,
                });
            }
        }
        if stabilizers.len() > n {
            return Err(CodeError::TooManyGenerators);
        }
        for i in 0..stabilizers.len() {
            for j in (i + 1)..stabilizers.len() {
                if !stabilizers[i].commutes_with(&stabilizers[j]) {
                    return Err(CodeError::NonCommuting(i, j));
                }
            }
        }
        let mut basis = BitBasis::new(2 * n);
        for (i, s) in stabilizers.iter().enumerate() {
            if !basis.insert(s.symplectic()) {
                return Err(CodeError::Dependent(i));
            }
        }
        let (logical_x, logical_z) = derive_logicals(n, &stabilizers);
        Ok(StabilizerCode {
            name: name.to_owned(),
            n,
            stabilizers,
            logical_x,
            logical_z,
            claimed_distance: None,
        })
    }

    /// Annotates the code with its published distance (recorded, not
    /// trusted: see [`StabilizerCode::min_distance_up_to`]).
    pub fn with_claimed_distance(mut self, d: u32) -> StabilizerCode {
        self.claimed_distance = Some(d);
        self
    }

    /// The code's display name, e.g. `[[7,1,3]]`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical qubit count `n`.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of stabilizer generators (`n − k`).
    pub fn num_stabilizers(&self) -> usize {
        self.stabilizers.len()
    }

    /// Logical qubit count `k`.
    pub fn num_logical(&self) -> usize {
        self.n - self.stabilizers.len()
    }

    /// The published distance, if annotated.
    pub fn claimed_distance(&self) -> Option<u32> {
        self.claimed_distance
    }

    /// The stabilizer generators.
    pub fn stabilizers(&self) -> &[Pauli] {
        &self.stabilizers
    }

    /// Logical X̄ representatives, one per logical qubit.
    pub fn logical_x(&self) -> &[Pauli] {
        &self.logical_x
    }

    /// Logical Z̄ representatives, one per logical qubit.
    pub fn logical_z(&self) -> &[Pauli] {
        &self.logical_z
    }

    /// `true` when `p` lies in the stabilizer group (sign-free).
    pub fn in_stabilizer_group(&self, p: &Pauli) -> bool {
        let mut basis = BitBasis::new(2 * self.n);
        for s in &self.stabilizers {
            basis.insert(s.symplectic());
        }
        basis.contains(p.symplectic())
    }

    /// `true` when `p` commutes with every stabilizer generator.
    pub fn in_normalizer(&self, p: &Pauli) -> bool {
        self.stabilizers.iter().all(|s| s.commutes_with(p))
    }

    /// Exhaustively searches for the minimum weight of a *logical*
    /// operator (normalizer element outside the stabilizer group) up to
    /// `max_weight`. Returns `Some(d)` when found, `None` when every
    /// operator of weight ≤ `max_weight` is benign (distance >
    /// `max_weight`).
    ///
    /// Cost grows as `C(n,w)·3^w`; keep `max_weight` small in debug
    /// builds (distance-3 checks are instant, full distance-7 checks on
    /// 23 qubits belong in `--release --ignored` tests).
    pub fn min_distance_up_to(&self, max_weight: u32) -> Option<u32> {
        let mut group = BitBasis::new(2 * self.n);
        for s in &self.stabilizers {
            group.insert(s.symplectic());
        }
        (1..=max_weight).find(|&w| self.has_logical_of_weight(w, &group))
    }

    /// Confirms the code distance is at least `d` (exhaustive check of
    /// all lighter errors).
    pub fn verify_distance_at_least(&self, d: u32) -> bool {
        d <= 1 || self.min_distance_up_to(d - 1).is_none()
    }

    fn has_logical_of_weight(&self, w: u32, group: &BitBasis) -> bool {
        let n = self.n;
        let mut support = Vec::with_capacity(w as usize);
        self.search_support(0, w as usize, n, &mut support, group)
    }

    fn search_support(
        &self,
        start: usize,
        remaining: usize,
        n: usize,
        support: &mut Vec<usize>,
        group: &BitBasis,
    ) -> bool {
        if remaining == 0 {
            return self.try_types(support, group);
        }
        for q in start..=(n - remaining) {
            support.push(q);
            if self.search_support(q + 1, remaining - 1, n, support, group) {
                return true;
            }
            support.pop();
        }
        false
    }

    fn try_types(&self, support: &[usize], group: &BitBasis) -> bool {
        // Enumerate 3^w Pauli type assignments over the support.
        let w = support.len();
        let total = 3usize.pow(w as u32);
        for mut code in 0..total {
            let mut x = 0u64;
            let mut z = 0u64;
            for &q in support {
                match code % 3 {
                    0 => x |= 1 << q,
                    1 => z |= 1 << q,
                    _ => {
                        x |= 1 << q;
                        z |= 1 << q;
                    }
                }
                code /= 3;
            }
            let p = Pauli::from_masks(self.n, x, z);
            if self.in_normalizer(&p) && !group.contains(p.symplectic()) {
                return true;
            }
        }
        false
    }
}

/// Symplectic Gram–Schmidt extraction of logical X̄/Z̄ pairs.
fn derive_logicals(n: usize, stabilizers: &[Pauli]) -> (Vec<Pauli>, Vec<Pauli>) {
    let k = n - stabilizers.len();
    if k == 0 {
        return (Vec::new(), Vec::new());
    }
    // Basis of the centralizer: vectors commuting with every stabilizer.
    let centralizer = centralizer_basis(n, stabilizers);
    let mut span = BitBasis::new(2 * n);
    for s in stabilizers {
        span.insert(s.symplectic());
    }
    let symp = |a: u128, b: u128| -> bool {
        let ax = (a & low_mask(n)) as u64;
        let az = ((a >> n) & low_mask(n)) as u64;
        let bx = (b & low_mask(n)) as u64;
        let bz = ((b >> n) & low_mask(n)) as u64;
        ((ax & bz).count_ones() + (az & bx).count_ones()) % 2 == 1
    };
    let mut pool = centralizer;
    let mut xs = Vec::with_capacity(k);
    let mut zs = Vec::with_capacity(k);
    while xs.len() < k {
        // Pick v outside the current span.
        let vi = pool
            .iter()
            .position(|&v| !span.contains(v))
            .expect("centralizer/stabilizer dimensions guarantee k pairs");
        let v = pool[vi];
        // Find a partner anticommuting with v.
        let wi = pool
            .iter()
            .position(|&w| symp(v, w) && !span.contains(w))
            .expect("a symplectic partner always exists in the centralizer");
        let w = pool[wi];
        // Sweep the rest of the pool to commute with the chosen pair.
        for u in pool.iter_mut() {
            if *u == v || *u == w {
                continue;
            }
            if symp(*u, w) {
                *u ^= v;
            }
            if symp(*u, v) {
                *u ^= w;
            }
        }
        span.insert(v);
        span.insert(w);
        xs.push(Pauli::from_symplectic(n, v));
        zs.push(Pauli::from_symplectic(n, w));
    }
    (xs, zs)
}

fn low_mask(n: usize) -> u128 {
    if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

/// A basis of all symplectic vectors commuting with every stabilizer.
fn centralizer_basis(n: usize, stabilizers: &[Pauli]) -> Vec<u128> {
    // v commutes with s  <=>  v · swap(s) = 0, where swap exchanges the
    // x and z halves. Kernel of the (n-k) x 2n constraint matrix.
    let rows: Vec<u128> = stabilizers
        .iter()
        .map(|s| (s.z_mask() as u128) | ((s.x_mask() as u128) << n))
        .collect();
    kernel_basis(&rows, 2 * n)
}

/// Kernel basis of a GF(2) matrix given as bit-rows over `cols` columns.
fn kernel_basis(rows: &[u128], cols: usize) -> Vec<u128> {
    let mut reduced: Vec<u128> = Vec::new();
    let mut pivots: Vec<usize> = Vec::new();
    for &row in rows {
        let mut r = row;
        for (p, rr) in pivots.iter().zip(&reduced) {
            if (r >> p) & 1 == 1 {
                r ^= rr;
            }
        }
        if r != 0 {
            let p = (127 - r.leading_zeros()) as usize;
            // Back-substitute into existing rows.
            for rr in reduced.iter_mut() {
                if (*rr >> p) & 1 == 1 {
                    *rr ^= r;
                }
            }
            reduced.push(r);
            pivots.push(p);
        }
    }
    let mut kernel = Vec::new();
    for free in 0..cols {
        if pivots.contains(&free) {
            continue;
        }
        let mut v = 1u128 << free;
        for (p, rr) in pivots.iter().zip(&reduced) {
            // Row rr has pivot p; if setting `free` makes the equation
            // rr·v = 1, flip the pivot coordinate.
            if (rr >> free) & 1 == 1 {
                v ^= 1u128 << p;
            }
        }
        kernel.push(v);
    }
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn five_one_three() -> StabilizerCode {
        StabilizerCode::new("[[5,1,3]]", ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]).unwrap()
    }

    #[test]
    fn five_code_has_right_parameters() {
        let c = five_one_three();
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.num_stabilizers(), 4);
        assert_eq!(c.num_logical(), 1);
    }

    #[test]
    fn logicals_commute_with_stabilizers_and_pair_up() {
        let c = five_one_three();
        assert_eq!(c.logical_x().len(), 1);
        assert_eq!(c.logical_z().len(), 1);
        let x = &c.logical_x()[0];
        let z = &c.logical_z()[0];
        for s in c.stabilizers() {
            assert!(s.commutes_with(x));
            assert!(s.commutes_with(z));
        }
        assert!(!x.commutes_with(z), "X and Z of one logical anticommute");
        assert!(!c.in_stabilizer_group(x));
        assert!(!c.in_stabilizer_group(z));
    }

    #[test]
    fn five_code_distance_is_exactly_three() {
        let c = five_one_three();
        assert!(c.verify_distance_at_least(3));
        assert_eq!(c.min_distance_up_to(3), Some(3));
    }

    #[test]
    fn anticommuting_generators_rejected() {
        let err = StabilizerCode::new("bad", ["XI", "ZI"]).unwrap_err();
        assert_eq!(err, CodeError::NonCommuting(0, 1));
    }

    #[test]
    fn dependent_generators_rejected() {
        let err = StabilizerCode::new("bad", ["XXI", "ZZI", "YYI"]).unwrap_err();
        assert_eq!(err, CodeError::Dependent(2));
    }

    #[test]
    fn too_many_generators_rejected() {
        let err = StabilizerCode::new("bad", ["XX", "ZZ", "YY"]).unwrap_err();
        assert_eq!(err, CodeError::TooManyGenerators);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let err = StabilizerCode::new("bad", ["XX", "ZZZ"]).unwrap_err();
        assert!(matches!(err, CodeError::WrongQubitCount { index: 1, .. }));
    }

    #[test]
    fn bell_code_logicals() {
        // [[2,0]] code: no logical qubits.
        let c = StabilizerCode::new("bell", ["XX", "ZZ"]).unwrap();
        assert_eq!(c.num_logical(), 0);
        assert!(c.logical_x().is_empty());
    }

    #[test]
    fn repetition_code_distance_one_in_x() {
        // Z-type repetition code: distance 1 against phase flips.
        let c = StabilizerCode::new("rep3", ["ZZI", "IZZ"]).unwrap();
        assert_eq!(c.min_distance_up_to(3), Some(1)); // Z on any qubit
    }

    #[test]
    fn steane_distance_three() {
        let c = StabilizerCode::new(
            "[[7,1,3]]",
            [
                "XXXXIII", "XXIIXXI", "XIXIXIX", "ZZZZIII", "ZZIIZZI", "ZIZIZIZ",
            ],
        )
        .unwrap();
        assert_eq!(c.num_logical(), 1);
        assert_eq!(c.min_distance_up_to(3), Some(3));
    }

    #[test]
    fn kernel_basis_spans_the_kernel() {
        // Matrix [110; 011]: kernel is {000, 111}.
        let rows = vec![0b011u128, 0b110u128];
        let k = kernel_basis(&rows, 3);
        assert_eq!(k.len(), 1);
        assert_eq!(k[0], 0b111);
    }
}
