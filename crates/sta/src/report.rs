//! The timing report: per-instruction slack, the critical path, and
//! resource bottleneck rankings.

use std::fmt;

use qspr_fabric::{Coord, JunctionId, SegmentId, Time};
use qspr_json::{JsonArray, JsonObject, ToJson};
use qspr_qasm::QubitId;
use qspr_sched::InstrId;

/// Timing of one instruction in the executed mapping.
///
/// `ready ≤ issued ≤ gate_start ≤ finish` are the observed instants from
/// the simulator; `required` and `slack` come from the backward sweep
/// (`slack = required − finish ≥ 0`, zero on makespan-pacing paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrTiming {
    /// The QIDG node.
    pub id: InstrId,
    /// Human-readable gate label, e.g. `C-X a,b`.
    pub gate: String,
    /// When every dependency had finished.
    pub ready: Time,
    /// When the mover routes were booked (ready + congestion wait).
    pub issued: Time,
    /// When all operands had arrived in the gate trap.
    pub gate_start: Time,
    /// When the gate completed (the arrival time of the sweep).
    pub finish: Time,
    /// Latest finish that would not have delayed the makespan, holding
    /// every successor's observed ready→finish span fixed.
    pub required: Time,
    /// `required − finish`.
    pub slack: Time,
    /// Whether the instruction lies on the extracted critical path.
    pub critical: bool,
}

impl InstrTiming {
    /// Time spent waiting for fabric resources before issue.
    pub fn congestion_wait(&self) -> Time {
        self.issued - self.ready
    }

    /// Time spent physically moving operands to the gate trap.
    pub fn routing_time(&self) -> Time {
        self.gate_start - self.issued
    }

    /// Time spent executing the gate itself.
    pub fn gate_time(&self) -> Time {
        self.finish - self.gate_start
    }

    fn fields(&self) -> JsonObject {
        JsonObject::new()
            .number("id", u64::from(self.id.0))
            .string("gate", &self.gate)
            .number("ready_us", self.ready)
            .number("issued_us", self.issued)
            .number("gate_start_us", self.gate_start)
            .number("finish_us", self.finish)
    }
}

impl ToJson for InstrTiming {
    fn to_json(&self) -> String {
        self.fields()
            .number("required_us", self.required)
            .number("slack_us", self.slack)
            .boolean("critical", self.critical)
            .build()
    }
}

/// One move or turn micro-command attributed to a critical instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainLink {
    /// A one-cell relocation.
    Move {
        /// The relocated qubit.
        qubit: QubitId,
        /// Completion instant.
        time: Time,
        /// Cell it came from.
        from: Coord,
        /// Cell it arrived in.
        to: Coord,
        /// The channel segment the move is attributed to (junction
        /// crossings have none).
        segment: Option<SegmentId>,
    },
    /// A direction change at a junction.
    Turn {
        /// The turning qubit.
        qubit: QubitId,
        /// Completion instant.
        time: Time,
        /// The junction cell.
        at: Coord,
        /// The junction the turn is attributed to.
        junction: Option<JunctionId>,
    },
}

impl ToJson for ChainLink {
    fn to_json(&self) -> String {
        fn opt_id(o: JsonObject, key: &str, id: Option<u64>) -> JsonObject {
            match id {
                Some(id) => o.number(key, id),
                None => o.raw(key, "null"),
            }
        }
        match *self {
            ChainLink::Move {
                qubit,
                time,
                from,
                to,
                segment,
            } => opt_id(
                JsonObject::new()
                    .string("kind", "move")
                    .number("qubit", u64::from(qubit.0))
                    .number("time_us", time)
                    .string("from", &from.to_string())
                    .string("to", &to.to_string()),
                "segment",
                segment.map(|s| u64::from(s.0)),
            )
            .build(),
            ChainLink::Turn {
                qubit,
                time,
                at,
                junction,
            } => opt_id(
                JsonObject::new()
                    .string("kind", "turn")
                    .number("qubit", u64::from(qubit.0))
                    .number("time_us", time)
                    .string("at", &at.to_string()),
                "junction",
                junction.map(|j| u64::from(j.0)),
            )
            .build(),
        }
    }
}

/// One instruction on the critical path, with the micro-commands that
/// paid for its routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalStep {
    /// The instruction's timing (its `critical` flag is always `true`).
    pub timing: InstrTiming,
    /// The attributed move/turn commands, in completion order.
    pub chain: Vec<ChainLink>,
}

impl ToJson for CriticalStep {
    fn to_json(&self) -> String {
        let mut chain = JsonArray::new();
        for link in &self.chain {
            chain.push_raw(&link.to_json());
        }
        self.timing.fields().raw("chain", &chain.build()).build()
    }
}

/// A channel segment ranked by its share of the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRank {
    /// The segment.
    pub id: SegmentId,
    /// Its first channel cell (for locating it on the fabric render).
    pub at: Coord,
    /// Move time spent in this segment by critical-path instructions.
    pub critical_time: Time,
    /// Congestion wait attributed to instructions that moved through
    /// this segment (an upper bound: each delayed instruction charges
    /// every resource it crossed).
    pub queue_time: Time,
    /// Moves through this segment by critical-path instructions.
    pub critical_moves: u64,
    /// All attributed moves through this segment.
    pub moves: u64,
}

impl ToJson for SegmentRank {
    fn to_json(&self) -> String {
        JsonObject::new()
            .number("segment", u64::from(self.id.0))
            .string("at", &self.at.to_string())
            .number("critical_us", self.critical_time)
            .number("queue_us", self.queue_time)
            .number("critical_moves", self.critical_moves)
            .number("moves", self.moves)
            .build()
    }
}

/// A junction ranked by its share of the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JunctionRank {
    /// The junction.
    pub id: JunctionId,
    /// Its cell.
    pub at: Coord,
    /// Turn time spent here by critical-path instructions.
    pub critical_time: Time,
    /// Congestion wait attributed to instructions that turned here.
    pub queue_time: Time,
    /// Turns here by critical-path instructions.
    pub critical_turns: u64,
    /// All attributed turns here.
    pub turns: u64,
}

impl ToJson for JunctionRank {
    fn to_json(&self) -> String {
        JsonObject::new()
            .number("junction", u64::from(self.id.0))
            .string("at", &self.at.to_string())
            .number("critical_us", self.critical_time)
            .number("queue_us", self.queue_time)
            .number("critical_turns", self.critical_turns)
            .number("turns", self.turns)
            .build()
    }
}

/// The full static-timing-analysis result for one mapped execution.
///
/// Produced by [`crate::TimingAnalysis::analyze`]; serializes to stable
/// JSON via [`ToJson`] and to a text block via [`fmt::Display`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingReport {
    pub(crate) makespan: Time,
    pub(crate) ideal: Time,
    pub(crate) instructions: Vec<InstrTiming>,
    pub(crate) critical_path: Vec<CriticalStep>,
    pub(crate) segments: Vec<SegmentRank>,
    pub(crate) junctions: Vec<JunctionRank>,
    pub(crate) segment_crit_moves: Vec<u32>,
    pub(crate) criticality: Vec<Time>,
}

impl TimingReport {
    /// The executed makespan the analysis was anchored to.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// The QIDG critical-path delay (the resource-free ideal baseline).
    pub fn ideal(&self) -> Time {
        self.ideal
    }

    /// Per-instruction timing, in instruction order.
    pub fn instructions(&self) -> &[InstrTiming] {
        &self.instructions
    }

    /// The critical path, in execution order.
    pub fn critical_path(&self) -> &[CriticalStep] {
        &self.critical_path
    }

    /// Segment bottlenecks, most critical first (top 10).
    pub fn segments(&self) -> &[SegmentRank] {
        &self.segments
    }

    /// Junction bottlenecks, most critical first (top 10).
    pub fn junctions(&self) -> &[JunctionRank] {
        &self.junctions
    }

    /// Finish time of the last critical-path step (equals
    /// [`TimingReport::makespan`] for non-empty programs).
    pub fn critical_end(&self) -> Option<Time> {
        self.critical_path.last().map(|s| s.timing.finish)
    }

    /// Smallest slack across all instructions (0 for non-empty programs:
    /// the critical path has none).
    pub fn min_slack(&self) -> Option<Time> {
        self.instructions.iter().map(|t| t.slack).min()
    }

    /// Critical-path move counts per segment (indexed by
    /// [`SegmentId::index`], full fabric length) — the congestion-history
    /// seed for the `--sta-feedback` negotiated router.
    pub fn segment_seed(&self) -> &[u32] {
        &self.segment_crit_moves
    }

    /// Per-instruction timing criticality `makespan − slack` — the
    /// scheduling-priority boost for `--sta-feedback` (low-slack
    /// instructions get the largest boost).
    pub fn criticality(&self) -> &[Time] {
        &self.criticality
    }
}

impl ToJson for TimingReport {
    fn to_json(&self) -> String {
        fn arr<T: ToJson>(items: &[T]) -> String {
            let mut a = JsonArray::new();
            for item in items {
                a.push_raw(&item.to_json());
            }
            a.build()
        }
        JsonObject::new()
            .number("makespan_us", self.makespan)
            .number("ideal_us", self.ideal)
            .raw("instructions", &arr(&self.instructions))
            .raw("critical_path", &arr(&self.critical_path))
            .raw("segments", &arr(&self.segments))
            .raw("junctions", &arr(&self.junctions))
            .build()
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "timing analysis")?;
        writeln!(
            f,
            "  makespan      {}µs  (dependency-ideal {}µs)",
            self.makespan, self.ideal
        )?;
        writeln!(
            f,
            "  instructions  {} total, {} on the critical path, min slack {}µs",
            self.instructions.len(),
            self.critical_path.len(),
            self.min_slack().unwrap_or(0)
        )?;
        if self.critical_path.is_empty() {
            writeln!(f, "  critical path: (empty)")?;
        } else {
            writeln!(f, "  critical path:")?;
            for step in &self.critical_path {
                let t = &step.timing;
                let moves = step
                    .chain
                    .iter()
                    .filter(|l| matches!(l, ChainLink::Move { .. }))
                    .count();
                let turns = step.chain.len() - moves;
                writeln!(
                    f,
                    "    {:<6} {:<16} ready@{:<8} gate {}..{}  wait {}µs  route {}µs  gate {}µs  ({moves} moves, {turns} turns)",
                    t.id.to_string(),
                    t.gate,
                    t.ready,
                    t.gate_start,
                    t.finish,
                    t.congestion_wait(),
                    t.routing_time(),
                    t.gate_time(),
                )?;
            }
        }
        if self.segments.is_empty() {
            writeln!(f, "  segment bottlenecks: none")?;
        } else {
            writeln!(
                f,
                "  segment bottlenecks (critical µs | queue µs | critical/total moves):"
            )?;
            for s in &self.segments {
                writeln!(
                    f,
                    "    {:<8} @ {:<10} {:>6} | {:>6} | {}/{}",
                    s.id.to_string(),
                    s.at.to_string(),
                    s.critical_time,
                    s.queue_time,
                    s.critical_moves,
                    s.moves
                )?;
            }
        }
        if self.junctions.is_empty() {
            writeln!(f, "  junction bottlenecks: none")?;
        } else {
            writeln!(
                f,
                "  junction bottlenecks (critical µs | queue µs | critical/total turns):"
            )?;
            for j in &self.junctions {
                writeln!(
                    f,
                    "    {:<8} @ {:<10} {:>6} | {:>6} | {}/{}",
                    j.id.to_string(),
                    j.at.to_string(),
                    j.critical_time,
                    j.queue_time,
                    j.critical_turns,
                    j.turns
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> TimingReport {
        let timing = InstrTiming {
            id: InstrId(0),
            gate: "H a".to_string(),
            ready: 0,
            issued: 0,
            gate_start: 3,
            finish: 13,
            required: 13,
            slack: 0,
            critical: true,
        };
        TimingReport {
            makespan: 13,
            ideal: 10,
            instructions: vec![timing.clone()],
            critical_path: vec![CriticalStep {
                timing,
                chain: vec![
                    ChainLink::Move {
                        qubit: QubitId(0),
                        time: 1,
                        from: Coord::new(0, 1),
                        to: Coord::new(0, 2),
                        segment: Some(SegmentId(4)),
                    },
                    ChainLink::Turn {
                        qubit: QubitId(0),
                        time: 2,
                        at: Coord::new(0, 3),
                        junction: None,
                    },
                ],
            }],
            segments: vec![SegmentRank {
                id: SegmentId(4),
                at: Coord::new(0, 1),
                critical_time: 1,
                queue_time: 0,
                critical_moves: 1,
                moves: 1,
            }],
            junctions: vec![],
            segment_crit_moves: vec![0, 0, 0, 0, 1],
            criticality: vec![13],
        }
    }

    /// The JSON schema is a stability contract: key order, names and
    /// value shapes are pinned byte-for-byte.
    #[test]
    fn golden_json() {
        let expected = concat!(
            r#"{"makespan_us":13,"ideal_us":10,"#,
            r#""instructions":[{"id":0,"gate":"H a","ready_us":0,"issued_us":0,"#,
            r#""gate_start_us":3,"finish_us":13,"required_us":13,"slack_us":0,"critical":true}],"#,
            r#""critical_path":[{"id":0,"gate":"H a","ready_us":0,"issued_us":0,"#,
            r#""gate_start_us":3,"finish_us":13,"chain":["#,
            r#"{"kind":"move","qubit":0,"time_us":1,"from":"(0, 1)","to":"(0, 2)","segment":4},"#,
            r#"{"kind":"turn","qubit":0,"time_us":2,"at":"(0, 3)","junction":null}]}],"#,
            r#""segments":[{"segment":4,"at":"(0, 1)","critical_us":1,"queue_us":0,"#,
            r#""critical_moves":1,"moves":1}],"junctions":[]}"#
        );
        assert_eq!(tiny_report().to_json(), expected);
    }

    #[test]
    fn json_parses_back() {
        let v = qspr_json::JsonValue::parse(&tiny_report().to_json()).unwrap();
        assert_eq!(v.get("makespan_us").and_then(|m| m.as_u64()), Some(13));
        assert_eq!(
            v.get("critical_path")
                .and_then(|c| c.as_array())
                .map(<[qspr_json::JsonValue]>::len),
            Some(1)
        );
    }

    #[test]
    fn display_mentions_every_section() {
        let text = tiny_report().to_string();
        for needle in [
            "timing analysis",
            "makespan      13µs",
            "critical path:",
            "i#0",
            "seg#4",
            "junction bottlenecks: none",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn accessors_agree_with_fields() {
        let r = tiny_report();
        assert_eq!(r.critical_end(), Some(13));
        assert_eq!(r.min_slack(), Some(0));
        assert_eq!(r.segment_seed(), &[0, 0, 0, 0, 1]);
        assert_eq!(r.criticality(), &[13]);
    }
}
