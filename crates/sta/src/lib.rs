//! Static timing analysis (STA) over a mapped execution.
//!
//! The paper's objective (§IV) is a single number — the makespan of the
//! mapped circuit — but a makespan alone cannot say *why* a mapping is
//! slow. This crate reconstructs the timing graph of one executed
//! mapping from the artifacts `qspr-sim` already records:
//!
//! * the [`qspr_qasm::Program`] gives the QIDG dependencies,
//! * the [`qspr_sim::MappingOutcome`] gives per-instruction observed
//!   instants (ready / issued / gate start / finish),
//! * the recorded [`qspr_sim::Trace`] gives the micro-command stream
//!   that attributes routing time to concrete fabric resources.
//!
//! From these, [`TimingAnalysis::analyze`] produces a [`TimingReport`]:
//!
//! * **arrival / required / slack** per instruction — arrival times are
//!   the observed finish instants (a forward sweep happened in the
//!   simulator); required times come from a backward sweep that holds
//!   each successor's observed ready→finish span fixed, so slack is
//!   provably non-negative and zero exactly on paths that pace the
//!   makespan;
//! * the **critical path** as an explicit instruction chain, each step
//!   carrying the move/turn micro-commands that paid for it;
//! * **bottleneck rankings** of channel segments and junctions by time
//!   spent on the critical path and by attributed queuing (congestion)
//!   delay.
//!
//! The report serializes to stable JSON ([`qspr_json::ToJson`], golden
//! tested) and renders as a human-readable text block
//! ([`std::fmt::Display`]). `qspr-core` feeds the same report back into
//! mapping (`--sta-feedback`): [`TimingReport::segment_seed`] pre-seeds
//! the negotiated router's congestion history and
//! [`TimingReport::criticality`] boosts scheduling priority of
//! low-slack instructions.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_qasm::Program;
//! use qspr_sim::{Mapper, MapperPolicy, Placement};
//! use qspr_sta::TimingAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::quale_45x85();
//! let tech = TechParams::date2012();
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//! let placement = Placement::center(&fabric, 2);
//! let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
//!     .record_trace(true)
//!     .map(&program, &placement)?;
//! let report = TimingAnalysis::new(&fabric, tech).analyze(&program, &outcome)?;
//! // The critical path ends exactly at the reported makespan.
//! assert_eq!(report.critical_end(), Some(outcome.latency()));
//! assert!(report.min_slack() == Some(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod error;
mod report;
mod trace_json;

pub use analysis::TimingAnalysis;
pub use error::StaError;
pub use report::{ChainLink, CriticalStep, InstrTiming, JunctionRank, SegmentRank, TimingReport};
pub use trace_json::trace_to_json;
