//! Strict-JSON serialization of a micro-command trace, for offline
//! cross-checking of sta reports (`qspr map --dump-trace`).

use qspr_json::{JsonArray, JsonObject};
use qspr_sim::{MicroCommand, Trace};

/// Renders `trace` as one strict JSON document (the writer emits no
/// whitespace; [`qspr_json::JsonValue::parse`] round-trips it).
///
/// # Examples
///
/// ```
/// use qspr_sim::Trace;
/// use qspr_sta::trace_to_json;
///
/// let json = trace_to_json(&Trace::default());
/// assert_eq!(json, r#"{"end_time_us":0,"moves":0,"turns":0,"entries":[]}"#);
/// ```
pub fn trace_to_json(trace: &Trace) -> String {
    let mut entries = JsonArray::new();
    for e in trace.entries() {
        let obj = JsonObject::new().number("time_us", e.time);
        let obj = match e.command {
            MicroCommand::Move { qubit, from, to } => obj
                .string("kind", "move")
                .number("qubit", u64::from(qubit.0))
                .string("from", &from.to_string())
                .string("to", &to.to_string()),
            MicroCommand::Turn { qubit, at } => obj
                .string("kind", "turn")
                .number("qubit", u64::from(qubit.0))
                .string("at", &at.to_string()),
            MicroCommand::GateStart {
                instr,
                gate,
                trap,
                q0,
                q1,
            } => {
                let obj = obj
                    .string("kind", "gate_start")
                    .number("instr", u64::from(instr.0))
                    .string("gate", gate.mnemonic())
                    .string("trap", &trap.to_string())
                    .number("q0", u64::from(q0.0));
                match q1 {
                    Some(q1) => obj.number("q1", u64::from(q1.0)),
                    None => obj.raw("q1", "null"),
                }
            }
            MicroCommand::GateEnd { instr } => obj
                .string("kind", "gate_end")
                .number("instr", u64::from(instr.0)),
        };
        entries.push_raw(&obj.build());
    }
    JsonObject::new()
        .number("end_time_us", trace.end_time())
        .number("moves", trace.move_count() as u64)
        .number("turns", trace.turn_count() as u64)
        .raw("entries", &entries.build())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::Coord;
    use qspr_json::JsonValue;
    use qspr_qasm::{Gate, QubitId};
    use qspr_sched::InstrId;
    use qspr_sim::TraceEntry;

    #[test]
    fn golden_every_command_kind() {
        let trace = Trace::new(vec![
            TraceEntry {
                time: 0,
                command: MicroCommand::GateStart {
                    instr: InstrId(0),
                    gate: Gate::H,
                    trap: Coord::new(1, 1),
                    q0: QubitId(0),
                    q1: None,
                },
            },
            TraceEntry {
                time: 1,
                command: MicroCommand::Move {
                    qubit: QubitId(1),
                    from: Coord::new(0, 0),
                    to: Coord::new(0, 1),
                },
            },
            TraceEntry {
                time: 2,
                command: MicroCommand::Turn {
                    qubit: QubitId(1),
                    at: Coord::new(0, 2),
                },
            },
            TraceEntry {
                time: 10,
                command: MicroCommand::GateEnd { instr: InstrId(0) },
            },
        ]);
        let expected = concat!(
            r#"{"end_time_us":10,"moves":1,"turns":1,"entries":["#,
            r#"{"time_us":0,"kind":"gate_start","instr":0,"gate":"H","trap":"(1, 1)","q0":0,"q1":null},"#,
            r#"{"time_us":1,"kind":"move","qubit":1,"from":"(0, 0)","to":"(0, 1)"},"#,
            r#"{"time_us":2,"kind":"turn","qubit":1,"at":"(0, 2)"},"#,
            r#"{"time_us":10,"kind":"gate_end","instr":0}]}"#
        );
        assert_eq!(trace_to_json(&trace), expected);
    }

    #[test]
    fn output_is_strict_json() {
        let trace = Trace::new(vec![TraceEntry {
            time: 3,
            command: MicroCommand::Move {
                qubit: QubitId(0),
                from: Coord::new(0, 0),
                to: Coord::new(0, 1),
            },
        }]);
        let v = JsonValue::parse(&trace_to_json(&trace)).unwrap();
        assert_eq!(v.get("moves").and_then(|m| m.as_u64()), Some(1));
        assert_eq!(
            v.get("entries")
                .and_then(|e| e.as_array())
                .map(<[JsonValue]>::len),
            Some(1)
        );
    }
}
