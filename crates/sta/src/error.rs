//! Errors a timing analysis can report.

use std::error::Error;
use std::fmt;

/// Why a [`crate::TimingAnalysis`] could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// The outcome was mapped without `record_trace(true)`: resource
    /// attribution needs the micro-command stream.
    MissingTrace,
    /// The program and the outcome disagree on the instruction count —
    /// the outcome was produced from a different program.
    ProgramMismatch {
        /// Instructions in the analyzed program.
        program: usize,
        /// Instruction stats recorded in the outcome.
        outcome: usize,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::MissingTrace => {
                write!(f, "timing analysis needs a recorded trace (record_trace)")
            }
            StaError::ProgramMismatch { program, outcome } => write!(
                f,
                "program has {program} instructions but the outcome recorded {outcome}"
            ),
        }
    }
}

impl Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(StaError::MissingTrace.to_string().contains("trace"));
        let e = StaError::ProgramMismatch {
            program: 3,
            outcome: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
