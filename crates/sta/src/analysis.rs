//! The timing sweeps: arrival/required/slack, critical-path extraction
//! and trace-based resource attribution.

use qspr_fabric::{Coord, Fabric, TechParams, Time, Topology};
use qspr_qasm::{Instruction, Program, QubitId};
use qspr_route::Resource;
use qspr_sched::{InstrId, Qidg};
use qspr_sim::{InstrStats, MappingOutcome, MicroCommand};

use crate::error::StaError;
use crate::report::{
    ChainLink, CriticalStep, InstrTiming, JunctionRank, SegmentRank, TimingReport,
};

/// How many bottleneck rows a report keeps per resource kind.
const TOP_RANKS: usize = 10;

/// Static timing analysis of one mapped execution on a concrete fabric.
///
/// See the [crate docs](crate) for the timing model; construction is
/// cheap, [`TimingAnalysis::analyze`] does the work.
#[derive(Debug, Clone, Copy)]
pub struct TimingAnalysis<'a> {
    fabric: &'a Fabric,
    tech: TechParams,
}

impl<'a> TimingAnalysis<'a> {
    /// An analyzer for executions mapped onto `fabric` under `tech`.
    pub fn new(fabric: &'a Fabric, tech: TechParams) -> TimingAnalysis<'a> {
        TimingAnalysis { fabric, tech }
    }

    /// Reconstructs the timing graph of `outcome` (which must have been
    /// mapped from `program` with trace recording enabled) and extracts
    /// slack, the critical path and bottleneck rankings.
    ///
    /// When the outcome came from a *backward* MVFB pass, pass the
    /// reversed (uncompute) program here: the analysis describes the
    /// execution that actually ran.
    ///
    /// # Errors
    ///
    /// [`StaError::MissingTrace`] without a recorded trace;
    /// [`StaError::ProgramMismatch`] when `program` and `outcome`
    /// disagree on the instruction count.
    pub fn analyze(
        &self,
        program: &Program,
        outcome: &MappingOutcome,
    ) -> Result<TimingReport, StaError> {
        let _span = qspr_obs::span("sta");
        let trace = outcome.trace().ok_or(StaError::MissingTrace)?;
        let qidg = Qidg::new(program, &self.tech);
        let n = qidg.len();
        if n != outcome.instr_stats().len() {
            return Err(StaError::ProgramMismatch {
                program: n,
                outcome: outcome.instr_stats().len(),
            });
        }
        let stats = outcome.instr_stats();
        let topo = self.fabric.topology();

        // Backward sweep: the anchor is the last gate completion (equal
        // to the reported latency for policies without return legs).
        let anchor = stats.iter().map(|s| s.finish).max().unwrap_or(0);
        let mut required = vec![anchor; n];
        for i in (0..n).rev() {
            let succs = qidg.succs(InstrId(i as u32));
            if let Some(r) = succs
                .iter()
                .map(|s| {
                    let st = &stats[s.index()];
                    // Hold the successor's observed ready→finish span
                    // fixed: finishing later than this would push it.
                    required[s.index()] - (st.finish - st.ready_at)
                })
                .min()
            {
                required[i] = r;
            }
        }
        let slack: Vec<Time> = (0..n)
            .map(|i| {
                debug_assert!(required[i] >= stats[i].finish, "negative slack at i#{i}");
                required[i].saturating_sub(stats[i].finish)
            })
            .collect();

        // Critical path: walk binding predecessors back from the sink.
        let path_ids = critical_chain(&qidg, stats, &slack, anchor);
        let mut crit_pos = vec![usize::MAX; n];
        for (pos, id) in path_ids.iter().enumerate() {
            crit_pos[id.index()] = pos;
        }

        // Trace attribution: match each move/turn completion to the
        // instruction window (issued, gate_start] of its qubit.
        let mut windows: Vec<Vec<(Time, Time, InstrId)>> = vec![Vec::new(); program.num_qubits()];
        for (i, instr) in program.instructions().iter().enumerate() {
            let st = &stats[i];
            for q in instr.qubits() {
                windows[q.index()].push((st.issued_at, st.gate_start, InstrId(i as u32)));
            }
        }
        let mut ptr = vec![0usize; windows.len()];
        let mut seg = ResourceTallies::new(topo.segments().len());
        let mut junc = ResourceTallies::new(topo.junctions().len());
        let mut per_instr: Vec<Vec<Resource>> = vec![Vec::new(); n];
        let mut chains: Vec<Vec<ChainLink>> = vec![Vec::new(); path_ids.len()];
        for e in trace.entries() {
            let (qubit, resource) = match e.command {
                MicroCommand::Move { qubit, from, to } => (qubit, move_resource(topo, from, to)),
                MicroCommand::Turn { qubit, at } => {
                    (qubit, topo.junction_at(at).map(Resource::Junction))
                }
                _ => continue,
            };
            let owner = attribute(&windows, &mut ptr, qubit, e.time);
            let is_crit = owner.is_some_and(|id| crit_pos[id.index()] != usize::MAX);
            let is_turn = matches!(e.command, MicroCommand::Turn { .. });
            match resource {
                Some(Resource::Segment(s)) => {
                    seg.record(s.index(), is_crit, self.tech.t_move);
                }
                Some(Resource::Junction(j)) => {
                    let cost = if is_turn {
                        self.tech.t_turn
                    } else {
                        self.tech.t_move
                    };
                    // Junction crossings without a turn still occupy the
                    // junction; they add time but only turns are counted
                    // in the turn columns.
                    if is_turn {
                        junc.record(j.index(), is_crit, cost);
                    } else if is_crit {
                        junc.crit_time[j.index()] += cost;
                    }
                }
                None => {}
            }
            if let Some(id) = owner {
                if let Some(r) = resource {
                    per_instr[id.index()].push(r);
                }
                let pos = crit_pos[id.index()];
                if pos != usize::MAX {
                    chains[pos].push(chain_link(&e.command, e.time, resource));
                }
            }
        }

        // Queuing delay: each delayed instruction charges its full wait
        // to every distinct resource its movers crossed (upper bound).
        for (i, resources) in per_instr.iter_mut().enumerate() {
            let wait = stats[i].congestion_wait();
            if wait == 0 {
                continue;
            }
            resources.sort_unstable();
            resources.dedup();
            for r in resources.iter() {
                match *r {
                    Resource::Segment(s) => seg.queue[s.index()] += wait,
                    Resource::Junction(j) => junc.queue[j.index()] += wait,
                }
            }
        }

        let instructions: Vec<InstrTiming> = (0..n)
            .map(|i| InstrTiming {
                id: InstrId(i as u32),
                gate: label(program, &program.instructions()[i]),
                ready: stats[i].ready_at,
                issued: stats[i].issued_at,
                gate_start: stats[i].gate_start,
                finish: stats[i].finish,
                required: required[i],
                slack: slack[i],
                critical: crit_pos[i] != usize::MAX,
            })
            .collect();
        let critical_path: Vec<CriticalStep> = path_ids
            .iter()
            .zip(chains)
            .map(|(id, chain)| CriticalStep {
                timing: instructions[id.index()].clone(),
                chain,
            })
            .collect();
        let segment_crit_moves = seg.crit_count.iter().map(|&c| c as u32).collect();
        let criticality = slack.iter().map(|&s| anchor - s).collect();
        Ok(TimingReport {
            makespan: outcome.latency(),
            ideal: qidg.critical_path_delay(),
            instructions,
            critical_path,
            segments: seg.ranked(|i, t| SegmentRank {
                id: qspr_fabric::SegmentId(i as u32),
                at: topo.segments()[i].cell_at(0),
                critical_time: t.crit_time,
                queue_time: t.queue,
                critical_moves: t.crit_count,
                moves: t.count,
            }),
            junctions: junc.ranked(|i, t| JunctionRank {
                id: qspr_fabric::JunctionId(i as u32),
                at: topo.junctions()[i].coord(),
                critical_time: t.crit_time,
                queue_time: t.queue,
                critical_turns: t.crit_count,
                turns: t.count,
            }),
            segment_crit_moves,
            criticality,
        })
    }
}

/// Per-resource accumulators for one resource kind.
struct ResourceTallies {
    count: Vec<u64>,
    crit_count: Vec<u64>,
    crit_time: Vec<Time>,
    queue: Vec<Time>,
}

/// One resource's tallies, handed to the rank constructor.
struct Tally {
    count: u64,
    crit_count: u64,
    crit_time: Time,
    queue: Time,
}

impl ResourceTallies {
    fn new(len: usize) -> ResourceTallies {
        ResourceTallies {
            count: vec![0; len],
            crit_count: vec![0; len],
            crit_time: vec![0; len],
            queue: vec![0; len],
        }
    }

    fn record(&mut self, index: usize, critical: bool, cost: Time) {
        self.count[index] += 1;
        if critical {
            self.crit_count[index] += 1;
            self.crit_time[index] += cost;
        }
    }

    /// The top [`TOP_RANKS`] active resources: critical time first, then
    /// queuing delay, then traffic, ties by id (fully deterministic).
    fn ranked<R>(&self, make: impl Fn(usize, Tally) -> R) -> Vec<R> {
        let mut order: Vec<usize> = (0..self.count.len())
            .filter(|&i| self.count[i] > 0 || self.queue[i] > 0 || self.crit_time[i] > 0)
            .collect();
        order.sort_by(|&a, &b| {
            self.crit_time[b]
                .cmp(&self.crit_time[a])
                .then(self.queue[b].cmp(&self.queue[a]))
                .then(self.count[b].cmp(&self.count[a]))
                .then(a.cmp(&b))
        });
        order.truncate(TOP_RANKS);
        order
            .into_iter()
            .map(|i| {
                make(
                    i,
                    Tally {
                        count: self.count[i],
                        crit_count: self.crit_count[i],
                        crit_time: self.crit_time[i],
                        queue: self.queue[i],
                    },
                )
            })
            .collect()
    }
}

/// Walks the zero-slack chain back from the makespan sink.
///
/// At each step the *binding* predecessors are those whose finish equals
/// the instruction's ready time (they paced it); ties prefer the lowest
/// slack, then the smallest id, so extraction is deterministic.
fn critical_chain(qidg: &Qidg, stats: &[InstrStats], slack: &[Time], anchor: Time) -> Vec<InstrId> {
    let n = stats.len();
    let Some(sink) = (0..n)
        .map(|i| InstrId(i as u32))
        .find(|id| stats[id.index()].finish == anchor)
    else {
        return Vec::new();
    };
    let mut rev = vec![sink];
    let mut cur = sink;
    loop {
        let ready = stats[cur.index()].ready_at;
        let mut best: Option<InstrId> = None;
        for &p in qidg.preds(cur) {
            if stats[p.index()].finish != ready {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (sp, sb) = (slack[p.index()], slack[b.index()]);
                    sp < sb || (sp == sb && p.0 < b.0)
                }
            };
            if better {
                best = Some(p);
            }
        }
        match best {
            Some(p) => {
                rev.push(p);
                cur = p;
            }
            None => break,
        }
    }
    rev.reverse();
    rev
}

/// The fabric resource a one-cell move occupies: the segment of the cell
/// it enters (or, entering a junction or trap, the one it leaves), else
/// the junction it touches.
fn move_resource(topo: &Topology, from: Coord, to: Coord) -> Option<Resource> {
    if let Some((s, _)) = topo.channel_at(to) {
        return Some(Resource::Segment(s));
    }
    if let Some(j) = topo.junction_at(to) {
        return Some(Resource::Junction(j));
    }
    if let Some((s, _)) = topo.channel_at(from) {
        return Some(Resource::Segment(s));
    }
    topo.junction_at(from).map(Resource::Junction)
}

/// The instruction whose routing window `(issued, gate_start]` contains
/// the completion instant `t` of a command by `qubit`, if any (return
/// legs and idle relocations have no owner).
fn attribute(
    windows: &[Vec<(Time, Time, InstrId)>],
    ptr: &mut [usize],
    qubit: QubitId,
    t: Time,
) -> Option<InstrId> {
    let w = &windows[qubit.index()];
    let p = &mut ptr[qubit.index()];
    while *p < w.len() && w[*p].1 < t {
        *p += 1;
    }
    let (issued, gate_start, id) = *w.get(*p)?;
    (issued < t && t <= gate_start).then_some(id)
}

fn chain_link(command: &MicroCommand, time: Time, resource: Option<Resource>) -> ChainLink {
    match *command {
        MicroCommand::Move { qubit, from, to } => ChainLink::Move {
            qubit,
            time,
            from,
            to,
            segment: match resource {
                Some(Resource::Segment(s)) => Some(s),
                _ => None,
            },
        },
        MicroCommand::Turn { qubit, at } => ChainLink::Turn {
            qubit,
            time,
            at,
            junction: match resource {
                Some(Resource::Junction(j)) => Some(j),
                _ => None,
            },
        },
        _ => unreachable!("only moves and turns are chained"),
    }
}

fn label(program: &Program, instr: &Instruction) -> String {
    let mut s = instr.gate.mnemonic().to_string();
    for (k, q) in instr.operands.qubits().enumerate() {
        s.push(if k == 0 { ' ' } else { ',' });
        s.push_str(program.qubit_name(q));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_json::ToJson;
    use qspr_sim::{Mapper, MapperPolicy, Placement};

    fn mapped(src: &str) -> (Fabric, TechParams, Program, MappingOutcome) {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse(src).unwrap();
        let placement = Placement::center(&fabric, program.num_qubits());
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .record_trace(true)
            .map(&program, &placement)
            .unwrap();
        (fabric, tech, program, outcome)
    }

    const SMALL: &str = "QUBIT a\nQUBIT b\nQUBIT c\nH a\nC-X a,b\nC-X b,c\nH c\n";

    #[test]
    fn critical_path_ends_at_the_makespan() {
        let (fabric, tech, program, outcome) = mapped(SMALL);
        let report = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap();
        assert_eq!(report.critical_end(), Some(outcome.latency()));
        assert_eq!(report.makespan(), outcome.latency());
        assert!(report.ideal() <= report.makespan());
    }

    #[test]
    fn slack_is_nonnegative_and_zero_on_the_path() {
        let (fabric, tech, program, outcome) = mapped(SMALL);
        let report = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap();
        assert_eq!(report.min_slack(), Some(0));
        for t in report.instructions() {
            assert!(t.required >= t.finish, "{}", t.id);
            if t.critical {
                assert_eq!(t.slack, 0, "{} is critical but has slack", t.id);
            }
        }
    }

    #[test]
    fn path_steps_bind_their_successors() {
        let (fabric, tech, program, outcome) = mapped(SMALL);
        let report = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap();
        let path = report.critical_path();
        assert!(!path.is_empty());
        for pair in path.windows(2) {
            assert_eq!(
                pair[0].timing.finish, pair[1].timing.ready,
                "critical predecessor must pace its successor"
            );
        }
    }

    #[test]
    fn chains_carry_attributed_moves() {
        let (fabric, tech, program, outcome) = mapped(SMALL);
        let report = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap();
        let commands: usize = report.critical_path().iter().map(|s| s.chain.len()).sum();
        assert!(commands > 0, "center placement still routes operands");
        // Every chained move carries its attributed resource id.
        let with_segment = report
            .critical_path()
            .iter()
            .flat_map(|s| s.chain.iter())
            .filter(|l| {
                matches!(
                    l,
                    ChainLink::Move {
                        segment: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert!(with_segment > 0);
        assert!(!report.segments().is_empty());
    }

    #[test]
    fn feedback_vectors_have_fabric_and_program_lengths() {
        let (fabric, tech, program, outcome) = mapped(SMALL);
        let report = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap();
        assert_eq!(
            report.segment_seed().len(),
            fabric.topology().segments().len()
        );
        assert_eq!(report.criticality().len(), program.instructions().len());
        // Criticality is anchored: critical instructions get the maximum.
        let max = report.criticality().iter().max().copied().unwrap();
        for t in report.instructions() {
            if t.critical {
                assert_eq!(report.criticality()[t.id.index()], max);
            }
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let (fabric, tech, program, outcome) = mapped(SMALL);
        let sta = TimingAnalysis::new(&fabric, tech);
        let a = sta.analyze(&program, &outcome).unwrap();
        let b = sta.analyze(&program, &outcome).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn missing_trace_is_a_typed_error() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let program = Program::parse("QUBIT a\nH a\n").unwrap();
        let placement = Placement::center(&fabric, 1);
        let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
            .map(&program, &placement)
            .unwrap();
        let err = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap_err();
        assert_eq!(err, StaError::MissingTrace);
    }

    #[test]
    fn program_mismatch_is_a_typed_error() {
        let (fabric, tech, _program, outcome) = mapped(SMALL);
        let other = Program::parse("QUBIT a\nH a\n").unwrap();
        let err = TimingAnalysis::new(&fabric, tech)
            .analyze(&other, &outcome)
            .unwrap_err();
        assert!(matches!(err, StaError::ProgramMismatch { .. }));
    }

    #[test]
    fn empty_program_yields_an_empty_report() {
        let (fabric, tech, program, outcome) = mapped("QUBIT a\n");
        let report = TimingAnalysis::new(&fabric, tech)
            .analyze(&program, &outcome)
            .unwrap();
        assert!(report.critical_path().is_empty());
        assert_eq!(report.critical_end(), None);
        assert_eq!(report.makespan(), 0);
    }
}
