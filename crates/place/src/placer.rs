//! The placement-engine seam: every placer, built-in or third-party,
//! implements [`Placer`] and produces a [`PlacerSolution`].
//!
//! The trait is object safe, so flows can hold a `dyn Placer` and swap
//! engines (MVFB vs Monte Carlo vs anything a downstream crate cooks
//! up) without growing one method per engine.

use std::time::Duration;

use qspr_fabric::Time;
use qspr_qasm::Program;
use qspr_sim::{MapError, Mapper, MappingOutcome, Placement, Trace};

/// Whether a winning pass executed the QIDG (forward) or the uncompute
/// UIDG (backward). Single-direction placers always report `Forward`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassDirection {
    /// The pass mapped the original program.
    Forward,
    /// The pass mapped the reversed (uncompute) program; the reported
    /// control trace is its time-reversal.
    Backward,
}

impl PassDirection {
    /// Stable lowercase name (`"forward"` / `"backward"`), used in
    /// reports and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            PassDirection::Forward => "forward",
            PassDirection::Backward => "backward",
        }
    }
}

/// The result of a placement search, common to every [`Placer`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerSolution {
    /// Best execution latency found.
    pub latency: Time,
    /// Direction of the winning pass.
    pub direction: PassDirection,
    /// The placement the winning pass started from. Re-mapping the
    /// program (or its reverse, per `direction`) from here reproduces
    /// `latency` exactly.
    pub initial_placement: Placement,
    /// Number of placement runs executed (the paper's `m'` for MVFB).
    pub runs: usize,
    /// Wall-clock time spent.
    pub cpu: Duration,
}

impl PlacerSolution {
    /// Re-runs the winning pass with trace recording and returns the
    /// outcome together with a *forward-executing* control trace: the
    /// pass's own trace when it was forward, its reversal when backward
    /// (the paper's "reverse of `T'_k`").
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (none are expected, since the winning
    /// pass already mapped successfully once).
    pub fn replay(
        &self,
        mapper: &Mapper<'_>,
        program: &Program,
    ) -> Result<(MappingOutcome, Trace), MapError> {
        let tracing = mapper.clone().record_trace(true);
        let outcome = match self.direction {
            PassDirection::Forward => tracing.map(program, &self.initial_placement)?,
            PassDirection::Backward => tracing.map(&program.reversed(), &self.initial_placement)?,
        };
        let trace = outcome.trace().expect("trace recording was enabled");
        let forward = match self.direction {
            PassDirection::Forward => trace.clone(),
            PassDirection::Backward => trace.reversed(),
        };
        Ok((outcome, forward))
    }
}

/// A pluggable placement engine.
///
/// Implementations search for an initial placement minimizing the
/// mapped execution latency of `program` under `mapper`'s policy. The
/// trait is object safe; flows store `dyn Placer` so engines are a
/// one-line swap.
///
/// # Examples
///
/// A trivial third-party placer that just proposes the deterministic
/// center placement:
///
/// ```
/// use std::time::Instant;
///
/// use qspr_fabric::{Fabric, TechParams};
/// use qspr_place::{PassDirection, Placer, PlacerSolution};
/// use qspr_qasm::Program;
/// use qspr_sim::{MapError, Mapper, MapperPolicy, Placement};
///
/// struct CenterPlacer;
///
/// impl Placer for CenterPlacer {
///     fn name(&self) -> &str {
///         "center"
///     }
///
///     fn place(
///         &self,
///         mapper: &Mapper<'_>,
///         program: &Program,
///     ) -> Result<PlacerSolution, MapError> {
///         let started = Instant::now();
///         let placement = Placement::center(mapper.fabric(), program.num_qubits());
///         let outcome = mapper.map(program, &placement)?;
///         Ok(PlacerSolution {
///             latency: outcome.latency(),
///             direction: PassDirection::Forward,
///             initial_placement: placement,
///             runs: 1,
///             cpu: started.elapsed(),
///         })
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fabric = Fabric::quale_45x85();
/// let tech = TechParams::date2012();
/// let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
/// let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
/// let engine: &dyn Placer = &CenterPlacer;
/// let solution = engine.place(&mapper, &program)?;
/// assert_eq!(solution.runs, 1);
/// # Ok(())
/// # }
/// ```
pub trait Placer {
    /// Short stable engine name for reports (`"mvfb"`, `"monte-carlo"`).
    fn name(&self) -> &str;

    /// Runs the placement search.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapError`] encountered while evaluating
    /// candidate placements; placers configured to evaluate zero
    /// candidates report a stall.
    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError>;
}

impl<P: Placer + ?Sized> Placer for &P {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError> {
        (**self).place(mapper, program)
    }
}

impl<P: Placer + ?Sized> Placer for std::sync::Arc<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError> {
        (**self).place(mapper, program)
    }
}

impl<P: Placer + ?Sized> Placer for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError> {
        (**self).place(mapper, program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_direction_names_are_stable() {
        assert_eq!(PassDirection::Forward.as_str(), "forward");
        assert_eq!(PassDirection::Backward.as_str(), "backward");
    }

    #[test]
    fn placer_is_object_safe() {
        fn _takes_dyn(_: &dyn Placer) {}
    }
}
