//! The Monte Carlo placer (paper §V.A): best of N random center
//! permutations.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qspr_fabric::Time;
use qspr_qasm::Program;
use qspr_sim::{MapError, Mapper, Placement};

use crate::placer::{PassDirection, Placer, PlacerSolution};

/// The paper's Monte Carlo baseline placer: `runs` random permutations of
/// the center traps are mapped; the cheapest wins.
///
/// # Examples
///
/// ```
/// use qspr_fabric::{Fabric, TechParams};
/// use qspr_place::{MonteCarloPlacer, Placer};
/// use qspr_qasm::Program;
/// use qspr_sim::{Mapper, MapperPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fabric = Fabric::quale_45x85();
/// let tech = TechParams::date2012();
/// let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
/// let program = Program::parse("QUBIT a\nQUBIT b\nC-X a,b\n")?;
/// let best = MonteCarloPlacer::new(5, 42).place(&mapper, &program)?;
/// assert_eq!(best.runs, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloPlacer {
    runs: usize,
    rng_seed: u64,
}

impl MonteCarloPlacer {
    /// A placer that evaluates `runs` random center permutations, drawn
    /// deterministically from `rng_seed`.
    pub fn new(runs: usize, rng_seed: u64) -> MonteCarloPlacer {
        MonteCarloPlacer { runs, rng_seed }
    }

    /// Number of placement runs this placer will execute.
    pub fn runs(&self) -> usize {
        self.runs
    }
}

impl Placer for MonteCarloPlacer {
    fn name(&self) -> &str {
        "monte-carlo"
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapError`] (e.g. a stalled mapping on a
    /// degenerate fabric). `runs == 0` is reported as a stall, since no
    /// placement was ever produced.
    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError> {
        let _span = qspr_obs::span("place");
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.rng_seed);
        let mut best: Option<(Time, Placement)> = None;
        for _ in 0..self.runs {
            let placement =
                Placement::center_permutation(mapper.fabric(), program.num_qubits(), &mut rng);
            let outcome = mapper.map(program, &placement)?;
            if best.as_ref().map_or(true, |(l, _)| outcome.latency() < *l) {
                best = Some((outcome.latency(), placement));
            }
        }
        let (latency, placement) = best.ok_or(MapError::Stalled {
            remaining: program.instructions().len(),
        })?;
        Ok(PlacerSolution {
            latency,
            direction: PassDirection::Forward,
            initial_placement: placement,
            runs: self.runs,
            cpu: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::{Fabric, TechParams};
    use qspr_sim::MapperPolicy;

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    #[test]
    fn more_runs_never_hurt() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let program = Program::parse(FIG3).unwrap();
        let few = MonteCarloPlacer::new(2, 7)
            .place(&mapper, &program)
            .unwrap();
        let many = MonteCarloPlacer::new(8, 7)
            .place(&mapper, &program)
            .unwrap();
        // Same RNG stream: the first 2 permutations are a subset of the 8.
        assert!(many.latency <= few.latency);
        assert_eq!(many.runs, 8);
    }

    #[test]
    fn is_deterministic() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let program = Program::parse(FIG3).unwrap();
        let a = MonteCarloPlacer::new(4, 3)
            .place(&mapper, &program)
            .unwrap();
        let b = MonteCarloPlacer::new(4, 3)
            .place(&mapper, &program)
            .unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.initial_placement, b.initial_placement);
    }

    #[test]
    fn best_placement_reproduces_latency() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let program = Program::parse(FIG3).unwrap();
        let sol = MonteCarloPlacer::new(4, 11)
            .place(&mapper, &program)
            .unwrap();
        assert_eq!(sol.direction, PassDirection::Forward);
        let outcome = mapper.map(&program, &sol.initial_placement).unwrap();
        assert_eq!(outcome.latency(), sol.latency);
    }

    #[test]
    fn zero_runs_is_an_error() {
        let fabric = Fabric::quale_45x85();
        let tech = TechParams::date2012();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let program = Program::parse(FIG3).unwrap();
        assert!(MonteCarloPlacer::new(0, 1)
            .place(&mapper, &program)
            .is_err());
    }
}
