//! The MVFB placer: Multi-start Variable-length Forward/Backward
//! (paper §IV.A).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qspr_fabric::Time;
use qspr_qasm::Program;
use qspr_sim::{MapError, Mapper, Placement};

use crate::placer::{PassDirection, Placer, PlacerSolution};

/// MVFB tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvfbConfig {
    /// Number of random center-placement seeds (the paper's `m`).
    pub seeds: usize,
    /// Stop a seed's local search after this many consecutive
    /// non-improving placement runs (the paper uses 3).
    pub patience: usize,
    /// Hard safety cap on passes per seed.
    pub max_passes_per_seed: usize,
    /// RNG seed making the whole search reproducible.
    pub rng_seed: u64,
}

impl MvfbConfig {
    /// A config with `seeds` starts and the paper's patience of 3.
    pub fn new(seeds: usize, rng_seed: u64) -> MvfbConfig {
        MvfbConfig {
            seeds,
            patience: 3,
            max_passes_per_seed: 64,
            rng_seed,
        }
    }
}

/// The result of an MVFB search.
///
/// Historical alias: MVFB now returns the engine-agnostic
/// [`PlacerSolution`] shared by every [`Placer`]; its `runs` field is
/// the paper's `m'` — the budget handed to the Monte Carlo placer for
/// the equal-effort comparison of Table 1.
pub type MvfbSolution = PlacerSolution;

/// The Multi-start Variable-length Forward/Backward placer.
///
/// For each of `m` random center placements, alternate forward passes of
/// the program and backward passes of its uncompute, feeding each pass's
/// final placement to the next, until [`MvfbConfig::patience`] consecutive
/// passes fail to improve the seed's best. The globally best pass wins.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvfbPlacer {
    config: MvfbConfig,
}

impl MvfbPlacer {
    /// Creates the placer.
    pub fn new(config: MvfbConfig) -> MvfbPlacer {
        MvfbPlacer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MvfbConfig {
        &self.config
    }
}

impl Placer for MvfbPlacer {
    fn name(&self) -> &str {
        "mvfb"
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MapError`]; reports a stall when configured
    /// with zero seeds.
    fn place(&self, mapper: &Mapper<'_>, program: &Program) -> Result<PlacerSolution, MapError> {
        let _span = qspr_obs::span("place");
        let started = Instant::now();
        let reversed = program.reversed();
        let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
        let mut best: Option<(Time, PassDirection, Placement)> = None;
        let mut total_runs = 0usize;

        for _ in 0..self.config.seeds {
            // Derive a per-seed stream so seeds are independent of how
            // many passes earlier seeds consumed.
            let mut seed_rng = StdRng::seed_from_u64(rng.gen());
            let mut placement =
                Placement::center_permutation(mapper.fabric(), program.num_qubits(), &mut seed_rng);
            let mut seed_best = Time::MAX;
            let mut stale = 0usize;
            let mut forward = true;
            for _ in 0..self.config.max_passes_per_seed {
                let prog = if forward { program } else { &reversed };
                let outcome = mapper.map(prog, &placement)?;
                total_runs += 1;
                let latency = outcome.latency();
                let direction = if forward {
                    PassDirection::Forward
                } else {
                    PassDirection::Backward
                };
                if best.as_ref().map_or(true, |(l, _, _)| latency < *l) {
                    best = Some((latency, direction, placement.clone()));
                }
                if latency < seed_best {
                    seed_best = latency;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.patience {
                        break;
                    }
                }
                placement = outcome.final_placement().clone();
                forward = !forward;
            }
        }

        let (latency, direction, initial_placement) = best.ok_or(MapError::Stalled {
            remaining: program.instructions().len(),
        })?;
        Ok(PlacerSolution {
            latency,
            direction,
            initial_placement,
            runs: total_runs,
            cpu: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qspr_fabric::{Fabric, TechParams};
    use qspr_sim::{validate_trace, MapperPolicy};

    const FIG3: &str = "\
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3
QUBIT q4,0
H q0
H q1
H q2
H q4
C-X q3,q2
C-Z q4,q2
C-Y q2,q1
C-Y q3,q1
C-X q4,q1
C-Z q2,q0
C-Y q3,q0
C-Z q4,q0
";

    fn setup() -> (Fabric, TechParams, Program) {
        (
            Fabric::quale_45x85(),
            TechParams::date2012(),
            Program::parse(FIG3).unwrap(),
        )
    }

    #[test]
    fn finds_a_solution_and_counts_runs() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let sol = MvfbPlacer::new(MvfbConfig::new(2, 5))
            .place(&mapper, &program)
            .unwrap();
        // Each seed performs at least patience+1 = 4 passes before giving
        // up (the first pass always "improves" from Time::MAX).
        assert!(sol.runs >= 2 * 4, "got {} runs", sol.runs);
        assert!(sol.latency > 0);
    }

    #[test]
    fn solution_reproduces_latency() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let sol = MvfbPlacer::new(MvfbConfig::new(2, 5))
            .place(&mapper, &program)
            .unwrap();
        let prog = match sol.direction {
            PassDirection::Forward => program.clone(),
            PassDirection::Backward => program.reversed(),
        };
        let outcome = mapper.map(&prog, &sol.initial_placement).unwrap();
        assert_eq!(outcome.latency(), sol.latency);
    }

    #[test]
    fn replay_returns_a_valid_forward_trace() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let sol = MvfbPlacer::new(MvfbConfig::new(2, 5))
            .place(&mapper, &program)
            .unwrap();
        let (outcome, forward_trace) = sol.replay(&mapper, &program).unwrap();
        assert_eq!(outcome.latency(), sol.latency);
        assert_eq!(forward_trace.len(), outcome.trace().unwrap().len());
        if sol.direction == PassDirection::Forward {
            // A forward-pass trace must replay cleanly against the program.
            validate_trace(
                &fabric,
                &program,
                &sol.initial_placement,
                &forward_trace,
                &tech,
            )
            .unwrap();
        }
    }

    #[test]
    fn is_deterministic() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let placer = MvfbPlacer::new(MvfbConfig::new(2, 9));
        let a = placer.place(&mapper, &program).unwrap();
        let b = placer.place(&mapper, &program).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.initial_placement, b.initial_placement);
    }

    #[test]
    fn more_seeds_never_hurt() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let few = MvfbPlacer::new(MvfbConfig::new(1, 5))
            .place(&mapper, &program)
            .unwrap();
        let many = MvfbPlacer::new(MvfbConfig::new(4, 5))
            .place(&mapper, &program)
            .unwrap();
        // Not guaranteed in general (different RNG draws), but with the
        // shared prefix stream the first seed coincides.
        assert!(many.latency <= few.latency);
        assert!(many.runs > few.runs);
    }

    #[test]
    fn zero_seeds_is_an_error() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        assert!(MvfbPlacer::new(MvfbConfig::new(0, 1))
            .place(&mapper, &program)
            .is_err());
    }

    #[test]
    fn beats_or_matches_plain_center_placement() {
        let (fabric, tech, program) = setup();
        let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
        let center = mapper
            .map(&program, &Placement::center(&fabric, 5))
            .unwrap()
            .latency();
        let sol = MvfbPlacer::new(MvfbConfig::new(3, 2))
            .place(&mapper, &program)
            .unwrap();
        // MVFB explores many placements; it should not lose to the single
        // deterministic center placement by much. (It searches random
        // permutations, so allow equality either way.)
        assert!(sol.latency <= center + center / 2);
    }
}
