//! Qubit placers for the QSPR mapper (paper §IV.A).
//!
//! Placement decides which fabric trap each program qubit initially
//! occupies; it dominates the routing and congestion costs of the mapped
//! circuit. Three strategies are provided:
//!
//! * **center placement** — QUALE's heuristic: qubits go to the traps
//!   nearest the fabric center ([`qspr_sim::Placement::center`]);
//! * **Monte Carlo** ([`MonteCarloPlacer`]) — the paper's comparison
//!   baseline: try many random permutations of the center traps, keep the
//!   best;
//! * **MVFB** ([`MvfbPlacer`]) — the paper's contribution, *Multi-start
//!   Variable-length Forward/Backward*: quantum circuits are reversible,
//!   so a forward execution of the QIDG from placement `P` yields a
//!   placement `P'` from which the *uncompute* program (UIDG) can be
//!   executed backwards, yielding `P''`, and so on. Each pass is a
//!   *placement run*; a seed's local search stops after
//!   [`MvfbConfig::patience`] consecutive non-improving runs, and the best
//!   pass over all `m` random seeds wins. If the best pass was backward,
//!   the reported control trace is its reversal (§IV.A).
//!
//! Every engine implements the object-safe [`Placer`] trait and returns
//! the engine-agnostic [`PlacerSolution`], so flows can hold a
//! `dyn Placer` and third-party crates can plug in their own engines —
//! see the trait docs for a worked example.
//!
//! # Examples
//!
//! ```
//! use qspr_fabric::{Fabric, TechParams};
//! use qspr_qasm::Program;
//! use qspr_place::{MvfbConfig, MvfbPlacer, Placer};
//! use qspr_sim::{Mapper, MapperPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fabric = Fabric::quale_45x85();
//! let tech = TechParams::date2012();
//! let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
//! let program = Program::parse("QUBIT a\nQUBIT b\nH a\nC-X a,b\n")?;
//!
//! let placer = MvfbPlacer::new(MvfbConfig::new(2, 7));
//! let solution = placer.place(&mapper, &program)?;
//! assert!(solution.latency > 0);
//! assert!(solution.runs >= 2);
//! # Ok(())
//! # }
//! ```

mod monte_carlo;
mod mvfb;
mod placer;

pub use monte_carlo::MonteCarloPlacer;
pub use mvfb::{MvfbConfig, MvfbPlacer, MvfbSolution};
pub use placer::{PassDirection, Placer, PlacerSolution};
