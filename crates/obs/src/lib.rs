//! Observability substrate for the QSPR stack: hierarchical span
//! tracing, a metrics registry with Prometheus text exposition, and
//! golden-tested profile reports.
//!
//! The crate is dependency-free (only `qspr-json` for serialization)
//! and designed around one invariant: **instrumentation left in place
//! costs almost nothing when nobody is listening**. [`span`] is a
//! single relaxed atomic load on the disabled path, so pipeline
//! crates (`qspr-qasm`, `qspr-sched`, `qspr-place`, `qspr-sim`,
//! `qspr-sta`) instrument unconditionally; hot inner loops
//! additionally cache [`enabled`] in a local bool.
//!
//! Two consumers exist today:
//!
//! * `qspr map --profile` installs a thread-local [`Collector`] and
//!   renders a [`ProfileReport`] (phase table + span tree + epoch
//!   counts);
//! * `qspr serve` installs a global [`MetricsSpanSink`] folding span
//!   durations into a [`Registry`] served at `GET /metrics`.
//!
//! ```
//! use std::sync::Arc;
//! use qspr_obs::{span, install_thread, Collector};
//!
//! let collector = Arc::new(Collector::new());
//! let guard = install_thread(collector.clone());
//! {
//!     let _phase = span("parse");
//!     let _inner = span("tokenize");
//! }
//! drop(guard);
//! let roots = collector.snapshot();
//! assert_eq!(roots[0].name, "parse");
//! assert_eq!(roots[0].children[0].name, "tokenize");
//! ```

mod metrics;
mod profile;
mod span;

pub use metrics::{Counter, Gauge, Histogram, MetricsSpanSink, Registry, QUANTILES};
pub use profile::{EpochCounts, ProfilePhase, ProfileReport};
pub use span::{
    enabled, install_global, install_thread, span, uninstall_global, Collector, Relay, SpanGuard,
    SpanNode, SpanSink, ThreadSinkGuard,
};
