//! The `--profile` report: per-phase wall time, the span tree with
//! self/total breakdown, and epoch counts, serialized with a
//! golden-tested JSON schema.

use std::fmt;
use std::time::Duration;

use qspr_json::{JsonArray, JsonObject, ToJson};

use crate::span::{Collector, SpanNode};

/// One top-level pipeline phase of a profiled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePhase {
    /// Phase name (a root span name, or `"other"` for unattributed
    /// wall time).
    pub name: String,
    /// Total wall microseconds spent in the phase.
    pub wall_us: u64,
    /// Number of spans aggregated into the phase (0 for `"other"`).
    pub count: u64,
}

/// Per-epoch simulator activity counts extracted from the span tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochCounts {
    /// Issue phases executed (one per simulator event round).
    pub issue: u64,
    /// Routed legs (route spans).
    pub route: u64,
    /// Epochs that entered joint rip-up refinement.
    pub refine: u64,
    /// Non-empty epoch finalizations.
    pub finalize: u64,
}

/// A profiled run: total wall time, phase breakdown, epoch counts and
/// the full aggregated span tree (times in microseconds).
///
/// Phase times sum to `total_wall_us` exactly: the synthetic `"other"`
/// phase absorbs wall time not covered by any root span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Total profiled wall time in microseconds.
    pub total_wall_us: u64,
    /// Top-level phases in first-seen order, then `"other"`.
    pub phases: Vec<ProfilePhase>,
    /// Simulator epoch activity.
    pub epochs: EpochCounts,
    /// Aggregated span tree roots.
    pub spans: Vec<SpanNode>,
}

impl ProfileReport {
    /// Builds a report from collected span roots and the measured
    /// total wall time of the profiled region.
    pub fn new(spans: Vec<SpanNode>, total_wall: Duration) -> ProfileReport {
        let total_wall_us = total_wall.as_micros() as u64;
        let mut phases: Vec<ProfilePhase> = spans
            .iter()
            .map(|root| ProfilePhase {
                name: root.name.to_owned(),
                wall_us: root.total_ns / 1_000,
                count: root.count,
            })
            .collect();
        let covered: u64 = phases.iter().map(|p| p.wall_us).sum();
        phases.push(ProfilePhase {
            name: "other".to_owned(),
            wall_us: total_wall_us.saturating_sub(covered),
            count: 0,
        });
        let mut epochs = EpochCounts::default();
        fn walk(nodes: &[SpanNode], epochs: &mut EpochCounts) {
            for node in nodes {
                match node.name {
                    "issue" => epochs.issue += node.count,
                    "route" => epochs.route += node.count,
                    "refine" => epochs.refine += node.count,
                    "finalize" => epochs.finalize += node.count,
                    _ => {}
                }
                walk(&node.children, epochs);
            }
        }
        walk(&spans, &mut epochs);
        ProfileReport {
            total_wall_us,
            phases,
            epochs,
            spans,
        }
    }

    /// Builds a report by snapshotting `collector`.
    pub fn from_collector(collector: &Collector, total_wall: Duration) -> ProfileReport {
        ProfileReport::new(collector.snapshot(), total_wall)
    }
}

fn span_json(node: &SpanNode) -> String {
    let mut children = JsonArray::new();
    for child in &node.children {
        children.push_raw(&span_json(child));
    }
    JsonObject::new()
        .string("name", node.name)
        .number("count", node.count)
        .number("total_us", node.total_ns / 1_000)
        .number("self_us", node.self_ns / 1_000)
        .raw("children", &children.build())
        .build()
}

impl ToJson for ProfileReport {
    fn to_json(&self) -> String {
        let mut phases = JsonArray::new();
        for phase in &self.phases {
            phases.push_raw(
                &JsonObject::new()
                    .string("name", &phase.name)
                    .number("wall_us", phase.wall_us)
                    .number("count", phase.count)
                    .build(),
            );
        }
        let mut spans = JsonArray::new();
        for root in &self.spans {
            spans.push_raw(&span_json(root));
        }
        JsonObject::new()
            .number("total_wall_us", self.total_wall_us)
            .raw("phases", &phases.build())
            .raw(
                "epochs",
                &JsonObject::new()
                    .number("issue", self.epochs.issue)
                    .number("route", self.epochs.route)
                    .number("refine", self.epochs.refine)
                    .number("finalize", self.epochs.finalize)
                    .build(),
            )
            .raw("spans", &spans.build())
            .build()
    }
}

impl fmt::Display for ProfileReport {
    /// Human-readable profile: a phase table then the indented span
    /// tree (total / self µs and counts).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile: total {} µs", self.total_wall_us)?;
        writeln!(f, "{:<12} {:>10} {:>8}", "phase", "wall µs", "count")?;
        for phase in &self.phases {
            writeln!(
                f,
                "{:<12} {:>10} {:>8}",
                phase.name, phase.wall_us, phase.count
            )?;
        }
        writeln!(
            f,
            "epochs: issue {} route {} refine {} finalize {}",
            self.epochs.issue, self.epochs.route, self.epochs.refine, self.epochs.finalize
        )?;
        writeln!(
            f,
            "{:<28} {:>10} {:>10} {:>8}",
            "span", "total µs", "self µs", "count"
        )?;
        fn tree(f: &mut fmt::Formatter<'_>, nodes: &[SpanNode], depth: usize) -> fmt::Result {
            for node in nodes {
                let label = format!("{:indent$}{}", "", node.name, indent = depth * 2);
                writeln!(
                    f,
                    "{:<28} {:>10} {:>10} {:>8}",
                    label,
                    node.total_ns / 1_000,
                    node.self_ns / 1_000,
                    node.count
                )?;
                tree(f, &node.children, depth + 1)?;
            }
            Ok(())
        }
        tree(f, &self.spans, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanSink;

    /// Hand-drives a collector through a synthetic run shaped like a
    /// real `map --profile`: parse, then a map containing simulate
    /// with issue/route/finalize activity, then sta.
    fn synthetic_report() -> ProfileReport {
        let c = Collector::new();
        let parse = c.enter(None, "parse");
        c.exit(parse, "parse", 900_500);
        let map = c.enter(None, "map");
        let sim = c.enter(Some(map), "simulate");
        for _ in 0..3 {
            let issue = c.enter(Some(sim), "issue");
            let route = c.enter(Some(issue), "route");
            c.exit(route, "route", 40_000);
            let route = c.enter(Some(issue), "route");
            c.exit(route, "route", 40_000);
            let fin = c.enter(Some(issue), "finalize");
            c.exit(fin, "finalize", 10_000);
            c.exit(issue, "issue", 100_000);
        }
        c.exit(sim, "simulate", 320_000);
        c.exit(map, "map", 400_000);
        let sta = c.enter(None, "sta");
        c.exit(sta, "sta", 99_499);
        ProfileReport::from_collector(&c, Duration::from_micros(1_500))
    }

    #[test]
    fn profile_json_schema_golden() {
        let report = synthetic_report();
        assert_eq!(
            report.to_json(),
            concat!(
                "{\"total_wall_us\":1500,",
                "\"phases\":[",
                "{\"name\":\"parse\",\"wall_us\":900,\"count\":1},",
                "{\"name\":\"map\",\"wall_us\":400,\"count\":1},",
                "{\"name\":\"sta\",\"wall_us\":99,\"count\":1},",
                "{\"name\":\"other\",\"wall_us\":101,\"count\":0}],",
                "\"epochs\":{\"issue\":3,\"route\":6,\"refine\":0,\"finalize\":3},",
                "\"spans\":[",
                "{\"name\":\"parse\",\"count\":1,\"total_us\":900,\"self_us\":900,\"children\":[]},",
                "{\"name\":\"map\",\"count\":1,\"total_us\":400,\"self_us\":80,\"children\":[",
                "{\"name\":\"simulate\",\"count\":1,\"total_us\":320,\"self_us\":20,\"children\":[",
                "{\"name\":\"issue\",\"count\":3,\"total_us\":300,\"self_us\":30,\"children\":[",
                "{\"name\":\"route\",\"count\":6,\"total_us\":240,\"self_us\":240,\"children\":[]},",
                "{\"name\":\"finalize\",\"count\":3,\"total_us\":30,\"self_us\":30,\"children\":[]}",
                "]}]}]},",
                "{\"name\":\"sta\",\"count\":1,\"total_us\":99,\"self_us\":99,\"children\":[]}",
                "]}"
            )
        );
    }

    #[test]
    fn phase_times_sum_to_total_exactly() {
        let report = synthetic_report();
        let sum: u64 = report.phases.iter().map(|p| p.wall_us).sum();
        assert_eq!(sum, report.total_wall_us);
    }

    #[test]
    fn other_phase_never_underflows() {
        // Covered time exceeding the measured total (clock skew across
        // span boundaries) clamps "other" to zero.
        let c = Collector::new();
        let t = c.enter(None, "parse");
        c.exit(t, "parse", 10_000_000);
        let report = ProfileReport::from_collector(&c, Duration::from_micros(5));
        assert_eq!(report.phases.last().map(|p| p.wall_us), Some(0));
    }

    #[test]
    fn relayed_parallel_sections_keep_phases_summing_to_total() {
        // Under `--jobs > 1` workers emit spans from other threads
        // through a [`Relay`](crate::span::Relay); those must merge
        // under the main thread's open root rather than surface as new
        // top-level phases, or the phase table would double-count the
        // concurrent wall time and phases + other would exceed total.
        use crate::span::{install_thread, span, Relay};
        use std::sync::Arc;
        let collector = Arc::new(Collector::new());
        let guard = install_thread(collector.clone());
        {
            let _map = span("map");
            let relay = Relay::capture();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        let _sink = relay.install();
                        let _leg = span("race_leg");
                    });
                }
            });
        }
        drop(guard);
        let report = ProfileReport::from_collector(&collector, Duration::from_micros(10_000));
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["map", "other"], "worker spans must not add phases");
        let map = &report.spans[0];
        let legs: u64 = map
            .children
            .iter()
            .filter(|c| c.name == "race_leg")
            .map(|c| c.count)
            .sum();
        assert_eq!(legs, 2, "both workers' spans merge under the open root");
        let sum: u64 = report.phases.iter().map(|p| p.wall_us).sum();
        assert_eq!(sum, report.total_wall_us);
    }

    #[test]
    fn text_rendering_mentions_every_phase() {
        let text = synthetic_report().to_string();
        for name in ["parse", "map", "simulate", "issue", "route", "sta", "other"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("epochs: issue 3 route 6 refine 0 finalize 3"));
    }
}
