//! Hierarchical span tracing with a near-zero disabled fast path.
//!
//! A [`SpanSink`] receives enter/exit notifications for named spans.
//! Two installation slots exist:
//!
//! * a **process-global** sink ([`install_global`]) — used by long-lived
//!   surfaces such as `qspr serve`, which folds span durations into its
//!   metrics registry;
//! * a **thread-local** sink ([`install_thread`]) — used by one-shot
//!   profiling (`qspr map --profile`), so concurrently running threads
//!   (e.g. parallel tests) never leak spans into each other's capture.
//!   The thread-local slot wins when both are installed.
//!
//! When *no* sink is installed anywhere, [`span`] costs a single
//! relaxed atomic load and returns an inert guard — cheap enough to
//! leave call sites in release builds unconditionally. Hot inner loops
//! that fire tens of thousands of spans per mapping should still cache
//! [`enabled`] once in a local and skip the call entirely (see
//! `qspr-sim`), which keeps the disabled overhead under the bench gate.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Receives span enter/exit notifications.
///
/// `enter` returns an opaque token that is handed back to `exit`
/// together with the measured wall-clock nanoseconds. Implementations
/// must be cheap and must not call [`span`] themselves.
pub trait SpanSink: Send + Sync {
    /// A span named `name` opened; `parent` is the token of the
    /// innermost open span on the calling thread, if any.
    fn enter(&self, parent: Option<u32>, name: &'static str) -> u32;
    /// The span identified by `token` closed after `nanos` ns.
    fn exit(&self, token: u32, name: &'static str, nanos: u64);
}

/// Count of installed sinks (global slot contributes 1, each installed
/// thread-local contributes 1). The disabled fast path is exactly one
/// relaxed load of this.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

static GLOBAL: Mutex<Option<Arc<dyn SpanSink>>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Option<Arc<dyn SpanSink>>> = const { RefCell::new(None) };
    /// Stack of open span tokens on this thread (parents for nesting).
    static STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// True when any sink is installed (global or on some thread). Cache
/// this in a local before a hot loop rather than calling [`span`]
/// per iteration.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs `sink` as the process-global span sink (replacing any
/// previous one).
pub fn install_global(sink: Arc<dyn SpanSink>) {
    let mut slot = GLOBAL.lock().expect("span sink lock");
    if slot.is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
    *slot = Some(sink);
}

/// Removes the process-global span sink, if any.
pub fn uninstall_global() {
    let mut slot = GLOBAL.lock().expect("span sink lock");
    if slot.take().is_some() {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Installs `sink` for the current thread only; the returned guard
/// restores the previous thread-local sink (usually none) on drop.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install_thread(sink: Arc<dyn SpanSink>) -> ThreadSinkGuard {
    let prev = LOCAL.with(|l| l.borrow_mut().replace(sink));
    if prev.is_none() {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
    ThreadSinkGuard { prev }
}

/// RAII guard from [`install_thread`]; restores the prior thread-local
/// sink when dropped.
pub struct ThreadSinkGuard {
    prev: Option<Arc<dyn SpanSink>>,
}

impl Drop for ThreadSinkGuard {
    fn drop(&mut self) {
        let removing = self.prev.is_none();
        LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
        if removing {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Opens a span named `name`, closed when the returned guard drops.
///
/// With no sink installed this is one relaxed atomic load plus the
/// construction of an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return SpanGuard { active: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    let sink = LOCAL
        .with(|l| l.borrow().clone())
        .or_else(|| GLOBAL.lock().expect("span sink lock").clone());
    let Some(sink) = sink else {
        // Some *other* thread has a thread-local sink installed; this
        // thread records nothing.
        return SpanGuard { active: None };
    };
    let parent = STACK.with(|s| s.borrow().last().copied());
    let token = sink.enter(parent, name);
    STACK.with(|s| s.borrow_mut().push(token));
    SpanGuard {
        active: Some(ActiveSpan {
            sink,
            token,
            name,
            started: Instant::now(),
        }),
    }
}

struct ActiveSpan {
    sink: Arc<dyn SpanSink>,
    token: u32,
    name: &'static str,
    started: Instant,
}

/// Guard holding one open span; dropping it records the duration.
/// Guards must drop in LIFO order on a given thread (the natural
/// consequence of binding them to lexical scopes).
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let nanos = a.started.elapsed().as_nanos() as u64;
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if stack.last() == Some(&a.token) {
                    stack.pop();
                }
            });
            a.sink.exit(a.token, a.name, nanos);
        }
    }
}

/// A captured span context for carrying the calling thread's sink and
/// innermost open span into worker threads.
///
/// Parallel sections (speculative routing, engine racing) run work on
/// scoped threads, but spans are delivered to per-thread sinks and
/// parented by a per-thread stack — a worker would either record
/// nothing (thread-local sink elsewhere) or start a fresh root tree.
/// `Relay::capture` snapshots the active sink *and* the innermost open
/// span on the forking thread; [`Relay::install`] then installs a
/// forwarding sink on the worker that parents the worker's root spans
/// under that anchor, so the merged tree reads as if the work had run
/// inline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use qspr_obs::{span, Collector, Relay};
///
/// let collector = Arc::new(Collector::new());
/// let guard = qspr_obs::install_thread(collector.clone());
/// {
///     let _parent = span("parent");
///     let relay = Relay::capture();
///     std::thread::scope(|scope| {
///         scope.spawn(move || {
///             let _guard = relay.install();
///             let _child = span("child");
///         });
///     });
/// }
/// drop(guard);
/// let roots = collector.snapshot();
/// assert_eq!(roots.len(), 1, "child attaches under parent, not as a root");
/// assert_eq!(roots[0].children[0].name, "child");
/// ```
#[derive(Clone)]
pub struct Relay {
    sink: Option<Arc<dyn SpanSink>>,
    anchor: Option<u32>,
}

impl Relay {
    /// Snapshots the calling thread's span context: its effective sink
    /// (thread-local, else global) and the token of its innermost open
    /// span. Cheap when tracing is disabled.
    pub fn capture() -> Relay {
        if ACTIVE.load(Ordering::Relaxed) == 0 {
            return Relay {
                sink: None,
                anchor: None,
            };
        }
        let sink = LOCAL
            .with(|l| l.borrow().clone())
            .or_else(|| GLOBAL.lock().expect("span sink lock").clone());
        let anchor = STACK.with(|s| s.borrow().last().copied());
        Relay { sink, anchor }
    }

    /// Installs the captured context on the current (worker) thread.
    /// Returns `None` when the capturing thread had no sink — the
    /// worker then records nothing, exactly like the capturer.
    #[must_use = "dropping the guard immediately uninstalls the relayed sink"]
    pub fn install(&self) -> Option<ThreadSinkGuard> {
        let inner = self.sink.clone()?;
        Some(install_thread(Arc::new(RelaySink {
            inner,
            anchor: self.anchor,
        })))
    }
}

/// The forwarding sink behind [`Relay::install`]: parentless spans are
/// re-parented under the captured anchor; everything else passes
/// through.
struct RelaySink {
    inner: Arc<dyn SpanSink>,
    anchor: Option<u32>,
}

impl SpanSink for RelaySink {
    fn enter(&self, parent: Option<u32>, name: &'static str) -> u32 {
        self.inner.enter(parent.or(self.anchor), name)
    }

    fn exit(&self, token: u32, name: &'static str, nanos: u64) {
        self.inner.exit(token, name, nanos);
    }
}

/// A thread-safe span aggregator building a call tree.
///
/// Spans with the same `(parent, name)` pair aggregate into one node
/// (count + total time), so memory stays bounded no matter how many
/// times a hot phase fires. The token handed out by `enter` *is* the
/// node id. Child wall time is accumulated on the parent so a
/// snapshot can report self time.
#[derive(Default)]
pub struct Collector {
    inner: Mutex<CollectorInner>,
}

#[derive(Default)]
struct CollectorInner {
    nodes: Vec<NodeData>,
    /// `(parent node id + 1, name) -> node id`; 0 encodes "root".
    index: HashMap<(u32, &'static str), u32>,
    roots: Vec<u32>,
}

struct NodeData {
    name: &'static str,
    parent: Option<u32>,
    count: u64,
    total_ns: u64,
    child_ns: u64,
    children: Vec<u32>,
}

/// One aggregated node of a [`Collector`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// How many spans aggregated into this node.
    pub count: u64,
    /// Total wall nanoseconds across all occurrences.
    pub total_ns: u64,
    /// Total minus time attributed to child spans.
    pub self_ns: u64,
    /// Child nodes in first-seen order.
    pub children: Vec<SpanNode>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Snapshot of the aggregated span tree, roots in first-seen order.
    pub fn snapshot(&self) -> Vec<SpanNode> {
        let inner = self.inner.lock().expect("collector lock");
        inner
            .roots
            .iter()
            .map(|&id| inner.node_snapshot(id))
            .collect()
    }

    /// Total number of recorded (closed) spans.
    pub fn total_spans(&self) -> u64 {
        let inner = self.inner.lock().expect("collector lock");
        inner.nodes.iter().map(|n| n.count).sum()
    }

    /// Sum of `count` over every node named `name`, anywhere in the
    /// tree.
    pub fn count_of(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("collector lock");
        inner
            .nodes
            .iter()
            .filter(|n| n.name == name)
            .map(|n| n.count)
            .sum()
    }
}

impl CollectorInner {
    fn node_snapshot(&self, id: u32) -> SpanNode {
        let node = &self.nodes[id as usize];
        SpanNode {
            name: node.name,
            count: node.count,
            total_ns: node.total_ns,
            self_ns: node.total_ns.saturating_sub(node.child_ns),
            children: node
                .children
                .iter()
                .map(|&c| self.node_snapshot(c))
                .collect(),
        }
    }
}

impl SpanSink for Collector {
    fn enter(&self, parent: Option<u32>, name: &'static str) -> u32 {
        let mut inner = self.inner.lock().expect("collector lock");
        let key = (parent.map_or(0, |p| p + 1), name);
        if let Some(&id) = inner.index.get(&key) {
            return id;
        }
        let id = inner.nodes.len() as u32;
        inner.nodes.push(NodeData {
            name,
            parent,
            count: 0,
            total_ns: 0,
            child_ns: 0,
            children: Vec::new(),
        });
        inner.index.insert(key, id);
        match parent {
            Some(p) => inner.nodes[p as usize].children.push(id),
            None => inner.roots.push(id),
        }
        id
    }

    fn exit(&self, token: u32, _name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("collector lock");
        let node = &mut inner.nodes[token as usize];
        node.count += 1;
        node.total_ns = node.total_ns.saturating_add(nanos);
        if let Some(p) = node.parent {
            let parent = &mut inner.nodes[p as usize];
            parent.child_ns = parent.child_ns.saturating_add(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstalled_span_is_inert() {
        // No sink on this thread and none global (obs tests never
        // install a global sink, precisely so they can run in
        // parallel): the guard must be inert even if sibling test
        // threads have thread-local sinks installed.
        let guard = span("nothing");
        assert!(guard.active.is_none());
    }

    #[test]
    fn thread_local_collector_builds_a_tree() {
        let collector = Arc::new(Collector::new());
        let guard = install_thread(collector.clone());
        assert!(enabled());
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
            let _other = span("other");
        }
        drop(guard);

        let roots = collector.snapshot();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 1);
        assert_eq!(
            outer.children.iter().map(|c| c.name).collect::<Vec<_>>(),
            vec!["inner", "other"]
        );
        assert_eq!(outer.children[0].count, 3);
        // Self time excludes child time.
        let child_total: u64 = outer.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(outer.self_ns, outer.total_ns - child_total);
        assert_eq!(collector.total_spans(), 5);
        assert_eq!(collector.count_of("inner"), 3);
    }

    #[test]
    fn thread_guard_restores_previous_sink() {
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        let ga = install_thread(a.clone());
        {
            let gb = install_thread(b.clone());
            {
                let _s = span("in_b");
            }
            drop(gb);
        }
        {
            let _s = span("in_a");
        }
        drop(ga);
        assert_eq!(b.count_of("in_b"), 1);
        assert_eq!(b.count_of("in_a"), 0);
        assert_eq!(a.count_of("in_a"), 1);
        assert_eq!(a.count_of("in_b"), 0);
    }

    #[test]
    fn relay_carries_spans_across_threads_under_the_anchor() {
        let collector = Arc::new(Collector::new());
        let guard = install_thread(collector.clone());
        {
            let _outer = span("outer");
            let relay = Relay::capture();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let relay = relay.clone();
                    scope.spawn(move || {
                        let _g = relay.install();
                        let _leg = span("leg");
                        let _work = span("work");
                    });
                }
            });
        }
        drop(guard);
        let roots = collector.snapshot();
        assert_eq!(roots.len(), 1, "worker spans must not become new roots");
        assert_eq!(roots[0].name, "outer");
        let leg = &roots[0].children[0];
        assert_eq!((leg.name, leg.count), ("leg", 2));
        assert_eq!((leg.children[0].name, leg.children[0].count), ("work", 2));
    }

    #[test]
    fn relay_from_a_sinkless_thread_installs_nothing() {
        let relay = Relay::capture();
        assert!(relay.install().is_none());
        // And spans on this thread stay inert.
        let _s = span("nothing");
    }

    #[test]
    fn sibling_thread_does_not_capture_into_thread_local_sink() {
        let collector = Arc::new(Collector::new());
        let guard = install_thread(collector.clone());
        std::thread::spawn(|| {
            // Other threads see `enabled()` but have no sink: inert.
            let _s = span("elsewhere");
        })
        .join()
        .expect("thread joins");
        drop(guard);
        assert_eq!(collector.total_spans(), 0);
    }
}
