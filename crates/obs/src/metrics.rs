//! Counters, gauges, log-bucket latency histograms, and a named
//! registry rendering Prometheus text exposition format.
//!
//! The histogram uses a fixed log-linear bucket layout (HdrHistogram
//! style): values `0..16` land in exact unit buckets; above that,
//! each power-of-two range splits into 16 sub-buckets, giving ≤ 6.25%
//! relative error across the whole `u64` range with a fixed 976-slot
//! table and lock-free recording. Percentile extraction interpolates
//! by rank *inside* the bucket (and clamps to the recorded maximum),
//! so nearby tail quantiles — p99 vs p999 of a tight distribution —
//! stay distinguishable instead of collapsing onto one shared bucket
//! floor; the reported value always lies in the sample's bucket, so
//! the ≤ 6.25% relative-error bound holds for every quantile.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::SpanSink;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating at `u64::MAX`).
    #[inline]
    pub fn add(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Exact buckets for values below this; log-linear above.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power-of-two group.
const SUB_BUCKETS: usize = 16;
/// 16 exact + 60 groups (msb 4..=63) × 16 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + 60 * SUB_BUCKETS;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        (msb - 3) * SUB_BUCKETS + sub
    }
}

/// Smallest value that lands in bucket `idx` (the reported
/// representative for percentiles).
fn bucket_floor(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let group = idx / SUB_BUCKETS; // >= 1
        let sub = (idx % SUB_BUCKETS) as u64;
        (LINEAR_MAX + sub) << (group - 1)
    }
}

/// Number of distinct values bucket `idx` spans (1 for the exact
/// range, `2^(group-1)` in the log-linear range).
fn bucket_width(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        1
    } else {
        1 << (idx / SUB_BUCKETS - 1)
    }
}

/// Fixed log-linear latency histogram with lock-free recording.
///
/// Supports bucket-wise [`merge`](Histogram::merge_from) whose
/// percentiles are *identical* to recording the concatenated sample
/// streams into one histogram (percentiles depend only on bucket
/// contents).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The fixed quantiles every histogram reports.
pub const QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // The running sum saturates instead of wrapping: a scrape after
        // ~2^64 accumulated µs should read "pinned", not a small lie.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max_value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q <= 1`): the bucket containing the
    /// sample of that rank, rank-interpolated across the bucket's
    /// width and clamped to the recorded maximum; `None` when empty.
    ///
    /// Interpolation keeps tight tails resolvable — when p99 and p999
    /// share one log-linear bucket, their distinct in-bucket ranks
    /// yield distinct values instead of one shared bucket floor. The
    /// result always lies inside the rank sample's bucket, so the
    /// layout's ≤ 6.25% relative-error bound is preserved.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            seen += in_bucket;
            if seen >= rank {
                let floor = bucket_floor(idx);
                let width = bucket_width(idx);
                // Spread the bucket's samples evenly across its value
                // range by rank: the first reports the floor, the last
                // the bucket's top value. (u128 avoids overflow near
                // the top of the u64 range.)
                let pos = rank - (seen - in_bucket); // 1..=in_bucket
                let interpolated = if in_bucket > 1 {
                    let offset = (width - 1) as u128 * (pos - 1) as u128 / (in_bucket - 1) as u128;
                    floor + offset as u64
                } else {
                    floor
                };
                return Some(interpolated.min(self.max_value()));
            }
        }
        // Unreachable while count() matches bucket totals; be safe.
        Some(self.max_value())
    }

    /// Median (see [`percentile`](Histogram::percentile)).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Adds every sample of `other` into `self`, bucket-wise.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let other_sum = other.sum.load(Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(other_sum))
            });
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// What a metric family holds.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            // Histograms expose quantiles directly, which in Prometheus
            // exposition terms is a `summary`.
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        }
    }
}

struct Family {
    help: String,
    /// Samples keyed by rendered label pairs (`k="v",k2="v2"`, possibly
    /// empty). BTreeMap keeps exposition order deterministic.
    samples: BTreeMap<String, Metric>,
}

/// A named registry of counters, gauges, and histograms that renders
/// itself in Prometheus text exposition format.
///
/// Handles are get-or-create: the first call for a `(name, labels)`
/// pair creates the metric, later calls return the same `Arc`. Mixing
/// kinds under one family name is a programming error and panics.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Renders label pairs as `k="v",k2="v2"` with value escaping.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn metric<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        get: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            samples: BTreeMap::new(),
        });
        let metric = family.samples.entry(label_key(labels)).or_insert_with(make);
        get(metric).unwrap_or_else(|| panic!("metric {name} registered with a different kind"))
    }

    /// Get-or-create the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.metric(
            name,
            help,
            labels,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.metric(
            name,
            help,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.metric(
            name,
            help,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders every family in Prometheus text exposition format.
    /// Every registered family emits at least one sample line (empty
    /// histograms still expose `_count 0`), and families render in
    /// name order.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind = family
                .samples
                .values()
                .next()
                .map_or("untyped", Metric::kind);
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, metric) in &family.samples {
                match metric {
                    Metric::Counter(c) => render_sample(&mut out, name, labels, c.get()),
                    Metric::Gauge(g) => {
                        let _ = if labels.is_empty() {
                            writeln!(out, "{name} {}", g.get())
                        } else {
                            writeln!(out, "{name}{{{labels}}} {}", g.get())
                        };
                    }
                    Metric::Histogram(h) => {
                        for (q, qs) in QUANTILES {
                            let sep = if labels.is_empty() { "" } else { "," };
                            let _ = writeln!(
                                out,
                                "{name}{{{labels}{sep}quantile=\"{qs}\"}} {}",
                                h.percentile(q).unwrap_or(0)
                            );
                        }
                        render_sample(&mut out, &format!("{name}_sum"), labels, h.sum());
                        render_sample(&mut out, &format!("{name}_count"), labels, h.count());
                    }
                }
            }
        }
        out
    }
}

fn render_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    let _ = if labels.is_empty() {
        writeln!(out, "{name} {value}")
    } else {
        writeln!(out, "{name}{{{labels}}} {value}")
    };
}

/// A [`SpanSink`] that folds closed spans into per-name duration
/// histograms (`qspr_span_us{span="..."}`) of a [`Registry`] — the
/// long-lived collection mode used by `qspr serve`.
pub struct MetricsSpanSink {
    registry: Arc<Registry>,
}

impl MetricsSpanSink {
    /// Creates a sink recording into `registry`.
    pub fn new(registry: Arc<Registry>) -> MetricsSpanSink {
        MetricsSpanSink { registry }
    }
}

impl SpanSink for MetricsSpanSink {
    fn enter(&self, _parent: Option<u32>, _name: &'static str) -> u32 {
        0
    }

    fn exit(&self, _token: u32, name: &'static str, nanos: u64) {
        self.registry
            .histogram(
                "qspr_span_us",
                "Mapping-pipeline span durations in microseconds",
                &[("span", name)],
            )
            .record(nanos / 1_000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max_value(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = Histogram::new();
        h.record(42);
        for p in [h.p50(), h.p90(), h.p99(), h.p999()] {
            assert_eq!(p, Some(42));
        }
        assert_eq!(h.max_value(), 42);
        assert_eq!(h.sum(), 42);
    }

    #[test]
    fn values_below_sixteen_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(7));
        assert_eq!(h.percentile(1.0), Some(15));
        assert_eq!(h.percentile(0.0625), Some(0));
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // The floor of the bucket holding v is <= v, and v's bucket is
        // exactly the one whose floor round-trips.
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            255,
            256,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12_345,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor({idx}) = {floor} > {v}");
            assert_eq!(bucket_index(floor), idx, "floor of bucket {idx} moved");
            // Relative error bound: bucket width is floor/16 for the
            // log-linear range, so the representative is within 6.25%.
            if v >= 16 {
                assert!(v - floor <= floor / 16, "bucket too wide at {v}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn tail_quantiles_stay_distinct_within_one_bucket() {
        // Regression: 980 fast samples plus a 20-sample tail spread
        // across ONE log-linear bucket (floor 98 304, width 4 096) used
        // to report p99 == p999 == the shared floor; rank interpolation
        // must keep them distinct and ordered.
        let h = Histogram::new();
        for _ in 0..980 {
            h.record(500);
        }
        for i in 0..20u64 {
            h.record(98_304 + i * 200);
        }
        assert_eq!(bucket_index(98_304), bucket_index(98_304 + 19 * 200));
        let (p99, p999) = (h.p99().unwrap(), h.p999().unwrap());
        assert!(p99 >= 98_304, "p99 = {p99} fell out of the tail bucket");
        assert!(p99 < p999, "tail collapsed: p99 = {p99}, p999 = {p999}");
        assert!(p999 <= h.max_value());
    }

    #[test]
    fn identical_samples_report_their_exact_value_at_every_quantile() {
        // All samples equal: interpolation would walk the bucket, but
        // the max clamp pins every quantile at the one true value.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100_000);
        }
        for p in [h.p50(), h.p90(), h.p99(), h.p999()] {
            assert_eq!(p, Some(100_000));
        }
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_value(), u64::MAX);
        assert_eq!(h.p50(), Some(bucket_floor(NUM_BUCKETS - 1)));
    }

    #[test]
    fn merged_percentiles_match_concatenated_golden() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 5, 900, 90_000] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 7, 1_200, 2_000_000] {
            b.record(v);
            all.record(v);
        }
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        // Golden merge semantics: count/sum/max add/merge exactly...
        assert_eq!(merged.count(), 8);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.max_value(), 2_000_000);
        // ...and every quantile equals the concatenated stream's.
        for (q, _) in QUANTILES {
            assert_eq!(merged.percentile(q), all.percentile(q), "q = {q}");
        }
        assert_eq!(merged.p50(), Some(7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merged_histograms_report_concatenated_percentiles(
            xs in proptest::collection::vec(0u64..2_000_000, 0..50),
            ys in proptest::collection::vec(0u64..2_000_000, 0..50),
        ) {
            let a = Histogram::new();
            let b = Histogram::new();
            let all = Histogram::new();
            for &v in &xs {
                a.record(v);
                all.record(v);
            }
            for &v in &ys {
                b.record(v);
                all.record(v);
            }
            let merged = Histogram::new();
            merged.merge_from(&a);
            merged.merge_from(&b);
            prop_assert_eq!(merged.count(), all.count());
            prop_assert_eq!(merged.sum(), all.sum());
            prop_assert_eq!(merged.max_value(), all.max_value());
            for (q, _) in QUANTILES {
                prop_assert_eq!(merged.percentile(q), all.percentile(q));
            }
            // Within bucket resolution of the true sample percentile:
            // the reported p50 lies inside the bucket holding the
            // rank-⌈n/2⌉ sample of the sorted concatenated stream (the
            // exact position is rank-interpolated) and never exceeds
            // the recorded maximum.
            let mut sorted = [xs.as_slice(), ys.as_slice()].concat();
            sorted.sort_unstable();
            if !sorted.is_empty() {
                let true_p50 = sorted[sorted.len().div_ceil(2) - 1];
                let p50 = merged.p50().unwrap();
                prop_assert_eq!(bucket_index(p50), bucket_index(true_p50));
                prop_assert!(p50 <= merged.max_value());
            }
        }
    }

    #[test]
    fn registry_handles_are_shared_and_render_is_golden() {
        let reg = Registry::new();
        reg.counter(
            "qspr_requests_total",
            "Requests served",
            &[("endpoint", "/map")],
        )
        .add(3);
        reg.counter(
            "qspr_requests_total",
            "Requests served",
            &[("endpoint", "/map")],
        )
        .inc();
        reg.counter(
            "qspr_requests_total",
            "Requests served",
            &[("endpoint", "/sta")],
        )
        .inc();
        reg.gauge("qspr_queue_depth", "Connections queued", &[])
            .set(2);
        let h = reg.histogram("qspr_wait_us", "Queue wait", &[]);
        h.record(7);
        h.record(7);
        h.record(7);
        assert_eq!(
            reg.render(),
            "\
# HELP qspr_queue_depth Connections queued
# TYPE qspr_queue_depth gauge
qspr_queue_depth 2
# HELP qspr_requests_total Requests served
# TYPE qspr_requests_total counter
qspr_requests_total{endpoint=\"/map\"} 4
qspr_requests_total{endpoint=\"/sta\"} 1
# HELP qspr_wait_us Queue wait
# TYPE qspr_wait_us summary
qspr_wait_us{quantile=\"0.5\"} 7
qspr_wait_us{quantile=\"0.9\"} 7
qspr_wait_us{quantile=\"0.99\"} 7
qspr_wait_us{quantile=\"0.999\"} 7
qspr_wait_us_sum 21
qspr_wait_us_count 3
"
        );
    }

    #[test]
    fn empty_families_still_emit_a_sample_line() {
        let reg = Registry::new();
        reg.histogram("qspr_latency_us", "Latency", &[("endpoint", "/map")]);
        reg.counter("qspr_hits_total", "Hits", &[]);
        let text = reg.render();
        // Every # TYPE line is followed by at least one sample.
        assert!(text.contains("qspr_hits_total 0\n"));
        assert!(text.contains("qspr_latency_us{endpoint=\"/map\",quantile=\"0.5\"} 0\n"));
        assert!(text.contains("qspr_latency_us_count{endpoint=\"/map\"} 0\n"));
    }

    #[test]
    fn metrics_span_sink_records_span_durations() {
        let reg = Arc::new(Registry::new());
        let sink = MetricsSpanSink::new(Arc::clone(&reg));
        sink.exit(0, "route", 5_000);
        sink.exit(0, "route", 7_000);
        sink.exit(0, "sta", 1_000);
        let route = reg.histogram("qspr_span_us", "", &[("span", "route")]);
        assert_eq!(route.count(), 2);
        assert_eq!(route.sum(), 12);
        let text = reg.render();
        assert!(text.contains("qspr_span_us_count{span=\"route\"} 2"));
        assert!(text.contains("qspr_span_us_count{span=\"sta\"} 1"));
    }
}
