//! Umbrella crate for workspace-level examples and integration tests.
//!
//! The actual library surface lives in the `qspr*` crates; this package
//! only hosts `examples/` and `tests/` that exercise the public APIs
//! end-to-end, mirroring how a downstream user would consume them.
//!
//! New to the codebase? Read `docs/ARCHITECTURE.md` at the repository
//! root first: it walks the end-to-end dataflow (QASM → QIDG → MVFB
//! placement → routing → simulation → reports/service), maps the
//! paper's constructs to the code that implements them, and explains
//! how the front ends (`qspr` CLI, `qspr batch`, `qspr serve`) reuse
//! the same seed-determined core.
