//! Umbrella crate for workspace-level examples and integration tests.
//!
//! The actual library surface lives in the `qspr*` crates; this package
//! only hosts `examples/` and `tests/` that exercise the public APIs
//! end-to-end, mirroring how a downstream user would consume them.
