//! Record, validate and inspect the micro-command trace of the paper's
//! Fig. 3 circuit, including the MVFB trick of reversing a backward
//! pass's trace.
//!
//! Run with: `cargo run --example trace_inspector`

use qspr_fabric::{Fabric, TechParams};
use qspr_qecc::codes::fig3_program;
use qspr_sim::{
    render_at, render_gantt, validate_trace, Mapper, MapperPolicy, MicroCommand, Placement,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    let program = fig3_program();
    let placement = Placement::center(&fabric, program.num_qubits());

    let outcome = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech))
        .record_trace(true)
        .map(&program, &placement)?;
    let trace = outcome.trace().expect("trace recorded");

    // Independent replay validation: continuity, turns at junctions,
    // gates in traps, channel/junction capacities, gate timings.
    validate_trace(&fabric, &program, &placement, trace, &tech)?;
    println!(
        "trace validated: {} commands, {} moves, {} turns, ends at {}µs\n",
        trace.len(),
        trace.move_count(),
        trace.turn_count(),
        trace.end_time()
    );

    println!("gate-level view:");
    for entry in trace {
        if matches!(
            entry.command,
            MicroCommand::GateStart { .. } | MicroCommand::GateEnd { .. }
        ) {
            println!("  {entry}");
        }
    }

    println!("\nfull command stream (first 20):");
    for entry in trace.iter().take(20) {
        println!("  {entry}");
    }

    // A per-instruction timeline: '.' waiting, '~' routing, '#' gate.
    println!("\ninstruction timeline:");
    print!("{}", render_gantt(&outcome, 72));

    // A fabric snapshot mid-flight (crop to the center region).
    let mid = outcome.latency() / 2;
    let art = render_at(&fabric, &placement, trace, mid);
    println!("\nfabric around the center at t={mid}µs:");
    for line in art.lines().skip(18).take(9) {
        println!("  {}", &line[30..56]);
    }

    // The uncompute direction: reversing a trace yields a forward
    // execution of the inverse program (the paper's `reverse of T'`).
    let reversed = trace.reversed();
    println!(
        "\nreversed trace starts with: {}",
        reversed.entries().first().expect("nonempty")
    );
    Ok(())
}
