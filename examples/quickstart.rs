//! Quickstart: parse a QASM circuit, map it onto the 45×85 ion-trap
//! fabric with the QSPR `Flow`, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use qspr::{Flow, FlowPolicy};
use qspr_fabric::Fabric;
use qspr_qasm::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little entangling circuit in the paper's QASM dialect.
    let source = "\
# Prepare a 4-qubit GHZ-like state, then uncompute half of it.
QUBIT q0,0
QUBIT q1,0
QUBIT q2,0
QUBIT q3,0
H q0
C-X q0,q1
C-X q1,q2
C-X q2,q3
C-Z q3,q0
";
    let program = Program::parse(source)?;
    println!(
        "parsed {} instructions over {} qubits",
        program.instructions().len(),
        program.num_qubits()
    );

    // The fabric every experiment in the paper uses.
    let fabric = Fabric::quale_45x85();
    println!(
        "fabric: {}x{} cells, {} traps, {} junctions",
        fabric.rows(),
        fabric.cols(),
        fabric.topology().traps().len(),
        fabric.topology().junctions().len()
    );

    // Map with the full QSPR flow (MVFB placement, m=4 for speed). The
    // flow owns the fabric, so it could just as well move to a worker
    // thread or live in a service.
    let flow = Flow::on(fabric).seeds(4).record_trace(true);
    let result = flow.run(&program)?;

    println!("\nQSPR mapping:");
    println!("  latency          {}µs", result.latency);
    println!("  ideal baseline   {}µs", flow.ideal_latency(&program));
    println!("  placement runs   {}", result.runs);
    println!("  total moves      {}", result.outcome.totals().moves);
    println!("  total turns      {}", result.outcome.totals().turns);

    // The first few micro-commands of the winning control trace.
    let trace = result.forward_trace.as_ref().expect("trace recorded");
    println!("\nfirst micro-commands of the control trace:");
    for entry in trace.iter().take(8) {
        println!("  {entry}");
    }
    println!("  ... ({} commands total)", trace.len());

    // Compare with the QUALE baseline: same flow, one builder call.
    let quale = flow.clone().policy(FlowPolicy::Quale).run(&program)?;
    println!(
        "\nQUALE baseline: {}µs  ->  QSPR improves by {:.1}%",
        quale.latency,
        100.0 * (quale.latency as f64 - result.latency as f64) / quale.latency as f64
    );
    Ok(())
}
