//! Router showdown: map one QECC encoder with the greedy engine and
//! with the negotiated-congestion engine, then compare latencies and
//! congestion statistics.
//!
//! Run with: `cargo run --example router_showdown --release`

use qspr::{Flow, RouterKind};
use qspr_fabric::Fabric;
use qspr_qecc::codes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The [[19,1,7]] encoder is the suite's most congested circuit —
    // the one where routing decisions matter most.
    let bench = codes::benchmark_suite().swap_remove(4);
    println!(
        "circuit: {} ({} qubits)",
        bench.name,
        bench.program.num_qubits()
    );

    let flow = Flow::on(Fabric::quale_45x85()).seeds(4);
    for kind in [RouterKind::Greedy, RouterKind::Negotiated] {
        let result = flow.clone().router(kind).run(&bench.program)?;
        let stats = result.outcome.routing_stats();
        println!(
            "{:<10} -> {}µs | {} routing epochs, {} rip-up iterations, \
             {} ripped routes, peak segment pressure {}",
            kind.to_string(),
            result.latency,
            stats.epochs,
            stats.iterations,
            stats.ripped,
            stats.max_pressure,
        );
    }
    println!("(sharing below channel capacity is free; the negotiated engine only\n pays to negotiate when movers actually collide)");
    Ok(())
}
