//! Placer comparison on one circuit: plain center placement vs Monte
//! Carlo vs MVFB at equal placement-run budgets (the paper's Table 1
//! methodology) — every engine driven through the same `dyn Placer`
//! seam a custom placer would use.
//!
//! Run with: `cargo run --release --example placer_battle [m]`

use qspr_fabric::{Fabric, TechParams};
use qspr_place::{MonteCarloPlacer, MvfbConfig, MvfbPlacer, Placer};
use qspr_qecc::codes::benchmark_suite;
use qspr_sim::{Mapper, MapperPolicy, Placement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    let fabric = Fabric::quale_45x85();
    let tech = TechParams::date2012();
    let mapper = Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech));
    let bench = benchmark_suite()
        .into_iter()
        .find(|b| b.name == "[[9,1,3]]")
        .expect("suite contains the 9-qubit code");
    println!(
        "placing {} ({} gates), m={m}\n",
        bench.name,
        bench.program.instructions().len()
    );

    // 1. Deterministic center placement (QUALE's placer).
    let center = Placement::center(&fabric, bench.program.num_qubits());
    let center_latency = mapper.map(&bench.program, &center)?.latency();
    println!("center placement      : {center_latency:>6}µs (1 run)");

    // 2. MVFB with m seeds, through the trait object seam.
    let mvfb_engine = MvfbPlacer::new(MvfbConfig::new(m, 2012));
    let mvfb = (&mvfb_engine as &dyn Placer).place(&mapper, &bench.program)?;
    println!(
        "MVFB (m={m:<3})          : {:>6}µs ({} runs, {:?}, best pass {:?})",
        mvfb.latency, mvfb.runs, mvfb.cpu, mvfb.direction
    );

    // 3. Monte Carlo with the same total number of placement runs —
    //    swapping engines is just picking another `dyn Placer`.
    let mc_engine = MonteCarloPlacer::new(mvfb.runs, 2012);
    let mc = (&mc_engine as &dyn Placer).place(&mapper, &bench.program)?;
    println!(
        "Monte Carlo ({} runs) : {:>6}µs ({:?})",
        mc.runs, mc.latency, mc.cpu
    );

    // Replay the MVFB winner and double-check its latency.
    let (outcome, _trace) = mvfb.replay(&mapper, &bench.program)?;
    assert_eq!(outcome.latency(), mvfb.latency);
    println!(
        "\nMVFB winner verified by replay: {}µs, congestion wait {}µs total",
        outcome.latency(),
        outcome.totals().congestion_wait
    );
    Ok(())
}
