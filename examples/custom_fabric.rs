//! Define a custom ion-trap fabric in ASCII, inspect its topology, and
//! map a circuit onto it — including the paper's Fig. 5 geometry where
//! turn-blind routing goes wrong.
//!
//! Run with: `cargo run --example custom_fabric`

use qspr_fabric::{Coord, Fabric, TechParams};
use qspr_qasm::Program;
use qspr_route::{ResourceState, Router, RouterConfig, FIG5_DEMO_FABRIC};
use qspr_sim::{Mapper, MapperPolicy, Placement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small fabric: two tile rows, traps hanging off the channels.
    let art = "\
+---+---+
|.T.|.T.|
+---+---+
|.T.|.T.|
+---+---+
";
    let fabric = Fabric::from_ascii(art)?;
    println!(
        "custom fabric ({}x{}):\n{fabric}",
        fabric.rows(),
        fabric.cols()
    );
    let topo = fabric.topology();
    println!(
        "topology: {} traps, {} junctions, {} channel segments",
        topo.traps().len(),
        topo.junctions().len(),
        topo.segments().len()
    );

    // Map a 4-qubit circuit onto it.
    let tech = TechParams::date2012();
    let program = Program::parse(
        "QUBIT a,0\nQUBIT b,0\nQUBIT c,0\nQUBIT d,0\n\
         H a\nC-X a,b\nC-X c,d\nC-Z b,c\n",
    )?;
    let placement = Placement::center(&fabric, program.num_qubits());
    let outcome =
        Mapper::new(&fabric, tech, MapperPolicy::qspr(&tech)).map(&program, &placement)?;
    println!(
        "mapped: latency {}µs ({} moves, {} turns)",
        outcome.latency(),
        outcome.totals().moves,
        outcome.totals().turns
    );

    // The Fig. 5 fabric: turn-blind routing picks an 8-turn staircase.
    let fig5 = Fabric::from_ascii(FIG5_DEMO_FABRIC)?;
    println!("\nFig. 5 fabric:\n{fig5}");
    let topo = fig5.topology();
    let state = ResourceState::new(topo);
    let s = topo.trap_at(Coord::new(7, 4)).expect("source trap");
    let t = topo.trap_at(Coord::new(1, 6)).expect("target trap");
    for aware in [true, false] {
        let mut cfg = RouterConfig::qspr(&tech);
        cfg.turn_aware = aware;
        let plan = Router::new(topo, cfg)
            .route(&state, s, t)
            .expect("routable");
        println!(
            "  turn_aware={aware:<5} -> {} moves, {} turns, {}µs travel",
            plan.moves(),
            plan.turns(),
            plan.duration()
        );
    }

    // Invalid fabrics are rejected with located errors.
    let err = Fabric::from_ascii("T....\n.....\n--+--\n").unwrap_err();
    println!("\nvalidation example: {err}");
    Ok(())
}
