//! Map the paper's six QECC encoding circuits and reproduce the shape of
//! Table 2 (ideal baseline vs QUALE vs QSPR).
//!
//! Run with: `cargo run --release --example map_qecc_suite [m]`
//! where the optional `m` is the MVFB seed count (default 5; the paper
//! uses 100).

use qspr::{Flow, FlowPolicy, NoiseModel};
use qspr_fabric::Fabric;
use qspr_qecc::codes::benchmark_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let flow = Flow::on(Fabric::quale_45x85()).seeds(m);
    let quale_flow = flow.clone().policy(FlowPolicy::Quale);

    let noise = NoiseModel::ion_trap_2012();
    println!("benchmark suite on the 45x85 fabric (MVFB m={m}):\n");
    for bench in benchmark_suite() {
        let row = flow.compare(&bench.name, &bench.program)?;
        // Fidelity view of the same gap (the paper's motivation).
        let qspr_result = flow.run(&bench.program)?;
        let quale_outcome = quale_flow.run(&bench.program)?.outcome;
        let p_qspr = noise.success_probability(&bench.program, &qspr_result.outcome);
        let p_quale = noise.success_probability(&bench.program, &quale_outcome);
        println!(
            "{row}   [{} qubits, {} gates, d>={}; success {:.3} vs QUALE {:.3}]",
            bench.program.num_qubits(),
            bench.program.instructions().len(),
            bench.code.claimed_distance().unwrap_or(1),
            p_qspr,
            p_quale,
        );
    }
    println!("\nExpected shape: baseline <= QSPR <= QUALE on every row, with");
    println!("QSPR improving on QUALE by tens of percent, more on larger circuits.");
    Ok(())
}
